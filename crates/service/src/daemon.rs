//! The campaign daemon.
//!
//! A [`Daemon`] binds a TCP listener and serves the [`crate::protocol`]
//! conversations: an accept loop hands each connection to a handler thread,
//! while a single runner thread drains the persistent [`JobQueue`] one
//! campaign at a time (campaigns are internally parallel — the executor owns
//! the core budget, so running two at once would only fight over cores).
//!
//! Durability: every job transition is journaled before it takes effect, and
//! each campaign checkpoints per-unit under the state directory. A daemon
//! killed mid-campaign restarts with the job re-queued and resumes it via
//! [`Run::resume`] — completed units are not recomputed, and the final report
//! is bit-identical to an uninterrupted run. Completed campaigns are
//! compacted ([`rough_engine::checkpoint::compact`]) and published to the
//! content-addressed report cache, from which repeat submissions and
//! [`crate::protocol::kind::FETCH`] requests are served without recomputing.
//!
//! Scheduling: every finished report's measured per-unit wall times are
//! absorbed into a [`CostTable`] persisted as `cost_table.json` under the
//! state directory, and each job is scheduled with
//! [`CostOrdered::calibrated`] — once every unit class of a plan has been
//! measured, later campaigns run their slowest classes first (better tail
//! latency under the executor's parallelism); until then the scheduler falls
//! back to the static `cells⁴·frequency` model.

use crate::protocol::{self, kind, ServiceEvent};
use crate::queue::{JobQueue, JobState};
use rough_engine::frame::{self, read_frame, write_frame, Frame, PayloadWriter};
use rough_engine::{
    checkpoint, wire, CostOrdered, CostTable, EngineError, FnObserver, Run, RunConfig, UnitExecutor,
};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

fn daemon_error(reason: impl Into<String>) -> EngineError {
    EngineError::Socket(format!("daemon: {}", reason.into()))
}

/// Configuration of a [`Daemon`].
pub struct DaemonConfig {
    addr: String,
    state_dir: PathBuf,
    executor: Option<Arc<dyn UnitExecutor>>,
}

impl DaemonConfig {
    /// Creates a configuration serving `addr` (e.g. `127.0.0.1:7171`; port 0
    /// picks an ephemeral port) with durable state under `state_dir`.
    pub fn new(addr: impl Into<String>, state_dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: addr.into(),
            state_dir: state_dir.into(),
            executor: None,
        }
    }

    /// Overrides the campaign executor. The default consults the
    /// `ROUGHSIM_EXECUTOR` environment variable
    /// ([`rough_engine::executor_from_env`]).
    pub fn executor(mut self, executor: Arc<dyn UnitExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }
}

struct Watcher {
    job: u64,
    stream: Mutex<TcpStream>,
}

struct Shared {
    queue: Mutex<JobQueue>,
    work: Condvar,
    watchers: Mutex<Vec<Arc<Watcher>>>,
    stop: AtomicBool,
    executor: Arc<dyn UnitExecutor>,
    /// Persisted per-class cost measurements feeding the calibrated
    /// scheduler of subsequent jobs.
    cost_table_path: PathBuf,
}

impl Shared {
    /// Sends `frame` to every watcher of `job`, dropping watchers whose
    /// connection has gone away.
    fn broadcast(&self, job: u64, frame: &Frame) {
        let mut watchers = self.watchers.lock().expect("watchers poisoned");
        watchers.retain(|w| {
            if w.job != job {
                return true;
            }
            let mut stream = w.stream.lock().expect("watcher stream poisoned");
            write_frame(&mut *stream, frame).is_ok()
        });
    }

    /// Sends the terminal frame to `job`'s watchers and deregisters them.
    fn finish_watchers(&self, job: u64, outcome: Result<(), &str>) {
        let frame = protocol::encode_job_done(job, outcome);
        let mut watchers = self.watchers.lock().expect("watchers poisoned");
        watchers.retain(|w| {
            if w.job != job {
                return true;
            }
            let mut stream = w.stream.lock().expect("watcher stream poisoned");
            write_frame(&mut *stream, &frame).ok();
            false
        });
    }
}

/// A running campaign daemon; dropping it does **not** stop the threads —
/// call [`Daemon::stop`] (or send [`kind::SHUTDOWN`] via a client) and then
/// [`Daemon::join`].
pub struct Daemon {
    addr: String,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    runner: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listener, opens (and compacts) the job queue, re-queues any
    /// job the previous daemon died running, and starts the accept and
    /// runner threads.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Socket`] when the address cannot be bound and
    /// [`EngineError::Checkpoint`] when the state directory is unusable.
    pub fn start(config: DaemonConfig) -> Result<Self, EngineError> {
        let executor = match config.executor {
            Some(executor) => executor,
            None => rough_engine::executor_from_env()?,
        };
        let queue = JobQueue::open(&config.state_dir)?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| daemon_error(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| daemon_error(format!("no local addr: {e}")))?
            .to_string();
        listener
            .set_nonblocking(true)
            .map_err(|e| daemon_error(format!("cannot poll listener: {e}")))?;

        let shared = Arc::new(Shared {
            queue: Mutex::new(queue),
            work: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            executor,
            cost_table_path: config.state_dir.join("cost_table.json"),
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
        let runner_shared = Arc::clone(&shared);
        let runner = std::thread::spawn(move || runner_loop(&runner_shared));

        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
            runner: Some(runner),
        })
    }

    /// The bound address, `host:port` (useful with an ephemeral port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests shutdown: the runner finishes (at most) the job in flight,
    /// the accept loop stops taking connections.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
    }

    /// Blocks until the accept and runner threads exit (after [`Daemon::stop`]
    /// or a client-initiated [`kind::SHUTDOWN`]).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            handle.join().ok();
        }
        if let Some(handle) = self.runner.take() {
            handle.join().ok();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true).ok();
                stream.set_nonblocking(false).ok();
                let conn_shared = Arc::clone(shared);
                std::thread::spawn(move || handle_connection(&conn_shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => break,
        }
    }
}

fn send_err(stream: &mut TcpStream, message: &str) {
    let frame = PayloadWriter::new().str(message).frame(frame::kind::ERR);
    write_frame(stream, &frame).ok();
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(_) => return, // disconnect or torn frame: drop the connection
        };
        match frame.kind {
            kind::SUBMIT => {
                if let Err(e) = handle_submit(shared, &mut stream, &frame) {
                    send_err(&mut stream, &e.to_string());
                }
            }
            kind::FETCH => {
                let reply = match protocol::decode_fetch(&frame) {
                    Ok(fingerprint) => {
                        let mut queue = shared.queue.lock().expect("queue poisoned");
                        match std::fs::read_to_string(queue.report_path(fingerprint)) {
                            Ok(text) => {
                                // A served report is hot again: refresh its
                                // LRU slot so the budget evicts around it.
                                queue.touch_report(fingerprint).ok();
                                protocol::encode_report(fingerprint, &text)
                            }
                            Err(_) => PayloadWriter::new().u64(fingerprint).frame(kind::NOT_FOUND),
                        }
                    }
                    Err(e) => {
                        send_err(&mut stream, &e.to_string());
                        continue;
                    }
                };
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
            kind::STATUS => {
                let status = {
                    let queue = shared.queue.lock().expect("queue poisoned");
                    queue.status()
                };
                if write_frame(&mut stream, &protocol::encode_status_report(status)).is_err() {
                    return;
                }
            }
            kind::SHUTDOWN => {
                write_frame(&mut stream, &Frame::empty(kind::BYE)).ok();
                shared.stop.store(true, Ordering::SeqCst);
                shared.work.notify_all();
                return;
            }
            other => send_err(&mut stream, &format!("unexpected frame kind {other}")),
        }
    }
}

fn handle_submit(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    frame: &Frame,
) -> Result<(), EngineError> {
    let (scenario_wire, watch) = protocol::decode_submit(frame)?;
    let scenario = wire::decode_scenario(&scenario_wire)?;
    let fingerprint = wire::scenario_fingerprint(&scenario);

    // Submission, terminal-state inspection and watcher registration happen
    // under the queue lock: the runner also needs it to settle a job, so a
    // watcher can never slip in *after* its job's terminal broadcast.
    let mut queue = shared.queue.lock().expect("queue poisoned");
    let (job, cached) = queue.submit(&scenario_wire, fingerprint)?;
    write_frame(stream, &protocol::encode_accepted(job, fingerprint, cached))?;
    if watch {
        let terminal: Option<Result<(), String>> = match queue.job(job).map(|j| &j.state) {
            _ if cached => Some(Ok(())),
            Some(JobState::Done) => Some(Ok(())),
            Some(JobState::Failed(error)) => Some(Err(error.clone())),
            _ => None,
        };
        match terminal {
            Some(outcome) => {
                let outcome = outcome.as_ref().map(|_| ()).map_err(String::as_str);
                write_frame(stream, &protocol::encode_job_done(job, outcome))?;
            }
            None => {
                let watcher =
                    Arc::new(Watcher {
                        job,
                        stream: Mutex::new(stream.try_clone().map_err(|e| {
                            daemon_error(format!("cannot clone watcher stream: {e}"))
                        })?),
                    });
                shared
                    .watchers
                    .lock()
                    .expect("watchers poisoned")
                    .push(watcher);
            }
        }
    }
    drop(queue);
    shared.work.notify_all();
    Ok(())
}

fn runner_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.next_queued() {
                    break id;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(queue, Duration::from_millis(200))
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        run_job(shared, job);
    }
}

/// Executes one job end to end; every failure path settles the job as
/// `Failed` so the queue never wedges.
fn run_job(shared: &Arc<Shared>, job: u64) {
    let (scenario_wire, fingerprint, checkpoint_path) = {
        let mut queue = shared.queue.lock().expect("queue poisoned");
        let Some(entry) = queue.job(job) else { return };
        let info = (
            entry.scenario_wire.clone(),
            entry.fingerprint,
            queue.checkpoint_path(job),
        );
        queue.mark(job, JobState::Running).ok();
        info
    };

    let result = execute_job(shared, job, &scenario_wire, fingerprint, &checkpoint_path);

    let mut queue = shared.queue.lock().expect("queue poisoned");
    match result {
        Ok(()) => {
            queue.mark(job, JobState::Done).ok();
            shared.finish_watchers(job, Ok(()));
        }
        Err(e) => {
            let message = e.to_string();
            queue.mark(job, JobState::Failed(message.clone())).ok();
            shared.finish_watchers(job, Err(&message));
        }
    }
}

fn execute_job(
    shared: &Arc<Shared>,
    job: u64,
    scenario_wire: &str,
    fingerprint: u64,
    checkpoint_path: &std::path::Path,
) -> Result<(), EngineError> {
    let scenario = wire::decode_scenario(scenario_wire)?;

    // Schedule with whatever cost measurements previous jobs accumulated; an
    // unreadable or absent table degrades to the static cost model.
    let cost_table = CostTable::load(&shared.cost_table_path).unwrap_or_default();
    let build_config = || {
        let event_shared = Arc::clone(shared);
        RunConfig::new()
            .executor_arc(Arc::clone(&shared.executor))
            .scheduler(CostOrdered::calibrated(cost_table))
            .checkpoint(checkpoint_path)
            .observer(FnObserver(move |event: &rough_engine::RunEvent| {
                let frame = ServiceEvent::from_run_event(event).encode(job);
                event_shared.broadcast(job, &frame);
            }))
    };

    // A partial checkpoint from a previous daemon life resumes instead of
    // recomputing — but only when it actually belongs to this scenario.
    let resumable = checkpoint::read(checkpoint_path)
        .map(|ckpt| ckpt.header.fingerprint == fingerprint)
        .unwrap_or(false);
    let run = if resumable {
        Run::resume(checkpoint_path, build_config())?
    } else {
        Run::new(&scenario, build_config())?
    };
    let plan = run.plan().clone();
    let report = run.execute()?;

    // Feed the calibration loop: fold this job's measured unit times into the
    // persisted cost table (re-read to not lose samples if the file changed).
    // Calibration is best-effort — a failed save never fails the job.
    let mut table = CostTable::load(&shared.cost_table_path).unwrap_or_default();
    if table.absorb(&plan, &report) > 0 {
        table.save(&shared.cost_table_path).ok();
    }

    // Settle the artifact: scrub checkpoint churn, then publish it as the
    // content-addressed cached report.
    checkpoint::compact(checkpoint_path)?;
    let mut queue = shared.queue.lock().expect("queue poisoned");
    queue.publish_report(job, fingerprint)
}
