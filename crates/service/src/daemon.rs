//! The campaign daemon.
//!
//! A [`Daemon`] binds a TCP listener and serves the [`crate::protocol`]
//! conversations: an accept loop hands each connection to a handler thread,
//! while a pool of runner threads drains the persistent [`JobQueue`] —
//! [`DaemonConfig::max_concurrent_jobs`] campaigns at a time (default 1, env
//! [`JOBS_ENV`]). Campaigns are internally parallel, so each runner owns its
//! *own* executor sized from an even split of the machine's core budget
//! ([`rough_engine::executor_from_env_budgeted`]): J concurrent jobs never
//! oversubscribe the cores a single job would have used. Dispatch order
//! comes from the queue's priority/aging score ([`crate::queue::Priority`]),
//! so high-priority submissions preempt the backlog while aged batch jobs
//! are never starved.
//!
//! Durability: every job transition is journaled before it takes effect, and
//! each campaign checkpoints per-unit under the state directory. A daemon
//! killed mid-campaign restarts with *every* interrupted job re-queued and
//! resumes each via [`Run::resume`] — completed units are not recomputed,
//! and the final reports are bit-identical to uninterrupted runs. Completed
//! campaigns are compacted ([`rough_engine::checkpoint::compact`]) and
//! published to the content-addressed report cache, from which repeat
//! submissions and [`crate::protocol::kind::FETCH`] requests are served
//! without recomputing.
//!
//! Scheduling: every finished report's measured per-unit wall times are
//! absorbed into a [`CostTable`] persisted as `cost_table.json` under the
//! state directory, and each job is scheduled with
//! [`CostOrdered::calibrated`] — once every unit class of a plan has been
//! measured, later campaigns run their slowest classes first (better tail
//! latency under the executor's parallelism); until then the scheduler falls
//! back to the static `cells⁴·frequency` model.

use crate::protocol::{self, kind, JobSummary, ServiceEvent};
use crate::queue::{JobQueue, JobState};
use rough_engine::frame::{self, read_frame, write_frame, Frame, PayloadWriter};
use rough_engine::{
    checkpoint, wire, CostOrdered, CostTable, EngineError, FnObserver, Run, RunConfig, UnitExecutor,
};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

fn daemon_error(reason: impl Into<String>) -> EngineError {
    EngineError::Socket(format!("daemon: {}", reason.into()))
}

/// Environment variable selecting how many campaigns run concurrently
/// (default 1). [`DaemonConfig::max_concurrent_jobs`] overrides it.
pub const JOBS_ENV: &str = "ROUGHSIMD_JOBS";

/// Environment variable granting each job this many automatic re-runs after
/// a failure (default 0 — a failure settles the job as `failed`, exactly the
/// pre-retry behaviour). With `N > 0`, the first `N` failures re-queue the
/// job (its checkpoint resumes completed units), and failure `N + 1` settles
/// it as `quarantined`: a journaled poison-job state that never re-queues
/// and never blocks the runner pool.
pub const JOB_RETRIES_ENV: &str = "ROUGHSIMD_JOB_RETRIES";

/// Re-runs granted to a failing job, from [`JOB_RETRIES_ENV`].
fn job_retries() -> u64 {
    std::env::var(JOB_RETRIES_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Configuration of a [`Daemon`].
pub struct DaemonConfig {
    addr: String,
    state_dir: PathBuf,
    executor: Option<Arc<dyn UnitExecutor>>,
    executors: Option<Vec<Arc<dyn UnitExecutor>>>,
    max_concurrent_jobs: Option<usize>,
}

impl DaemonConfig {
    /// Creates a configuration serving `addr` (e.g. `127.0.0.1:7171`; port 0
    /// picks an ephemeral port) with durable state under `state_dir`.
    pub fn new(addr: impl Into<String>, state_dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: addr.into(),
            state_dir: state_dir.into(),
            executor: None,
            executors: None,
            max_concurrent_jobs: None,
        }
    }

    /// Overrides the campaign executor; every runner shares this one
    /// instance, so it must tolerate concurrent `execute` calls (the
    /// stateless [`rough_engine::SerialExecutor`] and
    /// [`rough_engine::ThreadPoolExecutor`] do). For stateful executors —
    /// a socket worker pool, say — give each runner its own instance via
    /// [`DaemonConfig::executors`]. The default builds one budgeted executor
    /// per runner from the `ROUGHSIM_EXECUTOR` environment variable
    /// ([`rough_engine::executor_from_env_budgeted`]).
    pub fn executor(mut self, executor: Arc<dyn UnitExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Gives each runner its own executor instance; the pool size becomes
    /// `executors.len()`, overriding [`DaemonConfig::max_concurrent_jobs`].
    pub fn executors(mut self, executors: Vec<Arc<dyn UnitExecutor>>) -> Self {
        self.executors = Some(executors);
        self
    }

    /// Sets how many campaigns run concurrently (default 1; env
    /// [`JOBS_ENV`]). Each runner gets `core_budget / jobs` cores, so raising
    /// this trades single-campaign latency for queue throughput without
    /// oversubscribing the machine.
    pub fn max_concurrent_jobs(mut self, jobs: usize) -> Self {
        self.max_concurrent_jobs = Some(jobs.max(1));
        self
    }
}

struct Watcher {
    job: u64,
    stream: Mutex<TcpStream>,
}

struct Shared {
    queue: Mutex<JobQueue>,
    work: Condvar,
    watchers: Mutex<Vec<Arc<Watcher>>>,
    stop: AtomicBool,
    /// Persisted per-class cost measurements feeding the calibrated
    /// scheduler of subsequent jobs.
    cost_table_path: PathBuf,
    /// Serializes the load → absorb → save cycle on the cost table:
    /// concurrent runners would otherwise lose each other's samples.
    cost_lock: Mutex<()>,
}

impl Shared {
    /// Sends `frame` to every watcher of `job`, dropping watchers whose
    /// connection has gone away.
    fn broadcast(&self, job: u64, frame: &Frame) {
        let mut watchers = self.watchers.lock().expect("watchers poisoned");
        watchers.retain(|w| {
            if w.job != job {
                return true;
            }
            let mut stream = w.stream.lock().expect("watcher stream poisoned");
            write_frame(&mut *stream, frame).is_ok()
        });
    }

    /// Sends the terminal frame to `job`'s watchers and deregisters them.
    fn finish_watchers(&self, job: u64, outcome: Result<(), &str>) {
        let frame = protocol::encode_job_done(job, outcome);
        let mut watchers = self.watchers.lock().expect("watchers poisoned");
        watchers.retain(|w| {
            if w.job != job {
                return true;
            }
            let mut stream = w.stream.lock().expect("watcher stream poisoned");
            write_frame(&mut *stream, &frame).ok();
            false
        });
    }
}

/// A running campaign daemon; dropping it does **not** stop the threads —
/// call [`Daemon::stop`] (or send [`kind::SHUTDOWN`] via a client) and then
/// [`Daemon::join`].
pub struct Daemon {
    addr: String,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listener, opens (and compacts) the job queue, re-queues
    /// every job the previous daemon died running, and starts the accept
    /// thread plus one runner thread per concurrent job slot.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Socket`] when the address cannot be bound and
    /// [`EngineError::Checkpoint`] when the state directory is unusable.
    pub fn start(config: DaemonConfig) -> Result<Self, EngineError> {
        let jobs = config
            .max_concurrent_jobs
            .or_else(|| {
                std::env::var(JOBS_ENV)
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
            })
            .unwrap_or(1)
            .max(1);
        // One executor per runner. A single configured executor is shared by
        // every runner; otherwise each runner builds its own from an even
        // split of the core budget, so J concurrent campaigns use no more
        // cores than one unbudgeted campaign would.
        let executors: Vec<Arc<dyn UnitExecutor>> = match (config.executors, config.executor) {
            (Some(list), _) if !list.is_empty() => list,
            (_, Some(executor)) => (0..jobs).map(|_| Arc::clone(&executor)).collect(),
            _ => {
                let budget = (rough_engine::core_budget() / jobs).max(1);
                (0..jobs)
                    .map(|_| rough_engine::executor_from_env_budgeted(budget))
                    .collect::<Result<_, _>>()?
            }
        };
        let queue = JobQueue::open(&config.state_dir)?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| daemon_error(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| daemon_error(format!("no local addr: {e}")))?
            .to_string();
        listener
            .set_nonblocking(true)
            .map_err(|e| daemon_error(format!("cannot poll listener: {e}")))?;

        let shared = Arc::new(Shared {
            queue: Mutex::new(queue),
            work: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            cost_table_path: config.state_dir.join("cost_table.json"),
            cost_lock: Mutex::new(()),
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
        let runners = executors
            .into_iter()
            .map(|executor| {
                let runner_shared = Arc::clone(&shared);
                std::thread::spawn(move || runner_loop(&runner_shared, &executor))
            })
            .collect();

        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
            runners,
        })
    }

    /// The bound address, `host:port` (useful with an ephemeral port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests shutdown: every runner finishes (at most) its job in flight,
    /// the accept loop stops taking connections.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
    }

    /// Blocks until the accept and runner threads exit (after [`Daemon::stop`]
    /// or a client-initiated [`kind::SHUTDOWN`]).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            handle.join().ok();
        }
        for handle in self.runners.drain(..) {
            handle.join().ok();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true).ok();
                stream.set_nonblocking(false).ok();
                let conn_shared = Arc::clone(shared);
                std::thread::spawn(move || handle_connection(&conn_shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => break,
        }
    }
}

fn send_err(stream: &mut TcpStream, message: &str) {
    let frame = PayloadWriter::new().str(message).frame(frame::kind::ERR);
    write_frame(stream, &frame).ok();
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(_) => return, // disconnect or torn frame: drop the connection
        };
        match frame.kind {
            kind::SUBMIT => {
                if let Err(e) = handle_submit(shared, &mut stream, &frame) {
                    send_err(&mut stream, &e.to_string());
                }
            }
            kind::FETCH => {
                let reply = match protocol::decode_fetch(&frame) {
                    Ok(fingerprint) => {
                        let mut queue = shared.queue.lock().expect("queue poisoned");
                        match std::fs::read_to_string(queue.report_path(fingerprint)) {
                            Ok(text) => {
                                // A served report is hot again: refresh its
                                // LRU slot so the budget evicts around it.
                                queue.touch_report(fingerprint).ok();
                                protocol::encode_report(fingerprint, &text)
                            }
                            Err(_) => PayloadWriter::new().u64(fingerprint).frame(kind::NOT_FOUND),
                        }
                    }
                    Err(e) => {
                        send_err(&mut stream, &e.to_string());
                        continue;
                    }
                };
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
            kind::STATUS => {
                let (status, jobs) = {
                    let queue = shared.queue.lock().expect("queue poisoned");
                    let jobs: Vec<JobSummary> = queue
                        .jobs()
                        .map(|j| JobSummary {
                            id: j.id,
                            priority: j.priority,
                            state: j.state.label(),
                        })
                        .collect();
                    (queue.status(), jobs)
                };
                if write_frame(&mut stream, &protocol::encode_status_report(status, &jobs)).is_err()
                {
                    return;
                }
            }
            kind::SHUTDOWN => {
                write_frame(&mut stream, &Frame::empty(kind::BYE)).ok();
                shared.stop.store(true, Ordering::SeqCst);
                shared.work.notify_all();
                return;
            }
            other => send_err(&mut stream, &format!("unexpected frame kind {other}")),
        }
    }
}

fn handle_submit(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    frame: &Frame,
) -> Result<(), EngineError> {
    let (scenario_wire, watch, priority) = protocol::decode_submit(frame)?;
    let scenario = wire::decode_scenario(&scenario_wire)?;
    let fingerprint = wire::scenario_fingerprint(&scenario);

    // Submission, terminal-state inspection and watcher registration happen
    // under the queue lock: the runners also need it to settle a job, so a
    // watcher can never slip in *after* its job's terminal broadcast.
    let mut queue = shared.queue.lock().expect("queue poisoned");
    let (job, cached) = queue.submit(&scenario_wire, fingerprint, priority)?;
    write_frame(stream, &protocol::encode_accepted(job, fingerprint, cached))?;
    if watch {
        let terminal: Option<Result<(), String>> = match queue.job(job).map(|j| &j.state) {
            _ if cached => Some(Ok(())),
            Some(JobState::Done) => Some(Ok(())),
            Some(JobState::Failed(error)) | Some(JobState::Quarantined(error)) => {
                Some(Err(error.clone()))
            }
            _ => None,
        };
        match terminal {
            Some(outcome) => {
                let outcome = outcome.as_ref().map(|_| ()).map_err(String::as_str);
                write_frame(stream, &protocol::encode_job_done(job, outcome))?;
            }
            None => {
                let watcher =
                    Arc::new(Watcher {
                        job,
                        stream: Mutex::new(stream.try_clone().map_err(|e| {
                            daemon_error(format!("cannot clone watcher stream: {e}"))
                        })?),
                    });
                shared
                    .watchers
                    .lock()
                    .expect("watchers poisoned")
                    .push(watcher);
            }
        }
    }
    drop(queue);
    shared.work.notify_all();
    Ok(())
}

fn runner_loop(shared: &Arc<Shared>, executor: &Arc<dyn UnitExecutor>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Dispatch and mark under one lock hold: another runner
                // scanning the queue never sees the job as still queued.
                if let Some(id) = queue.take_next() {
                    queue.mark(id, JobState::Running).ok();
                    break id;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(queue, Duration::from_millis(200))
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        run_job(shared, executor, job);
    }
}

/// Executes one job end to end; every failure path settles the job — as
/// `Failed`, or through the [`JOB_RETRIES_ENV`] retry/quarantine ladder —
/// so the queue never wedges.
fn run_job(shared: &Arc<Shared>, executor: &Arc<dyn UnitExecutor>, job: u64) {
    let (scenario_wire, fingerprint, checkpoint_path) = {
        let queue = shared.queue.lock().expect("queue poisoned");
        let Some(entry) = queue.job(job) else { return };
        (
            entry.scenario_wire.clone(),
            entry.fingerprint,
            queue.checkpoint_path(job),
        )
    };

    let result = execute_job(
        shared,
        executor,
        job,
        &scenario_wire,
        fingerprint,
        &checkpoint_path,
    );

    let mut queue = shared.queue.lock().expect("queue poisoned");
    match result {
        Ok(()) => {
            queue.mark(job, JobState::Done).ok();
            shared.finish_watchers(job, Ok(()));
        }
        Err(e) => {
            let message = e.to_string();
            let retries = job_retries();
            let attempts = queue.record_attempt(job).unwrap_or(u64::MAX);
            if attempts <= retries {
                // Budget left: re-queue. The job's checkpoint survives, so
                // the retry resumes past every completed unit. Watchers stay
                // registered — the job is not terminal yet.
                queue.mark(job, JobState::Queued).ok();
                shared.work.notify_all();
            } else if retries > 0 {
                // Retries exhausted: poison job. Terminal like `Failed`, but
                // counted separately so operators can spot it.
                queue.mark(job, JobState::Quarantined(message.clone())).ok();
                shared.finish_watchers(job, Err(&message));
            } else {
                queue.mark(job, JobState::Failed(message.clone())).ok();
                shared.finish_watchers(job, Err(&message));
            }
        }
    }
}

fn execute_job(
    shared: &Arc<Shared>,
    executor: &Arc<dyn UnitExecutor>,
    job: u64,
    scenario_wire: &str,
    fingerprint: u64,
    checkpoint_path: &std::path::Path,
) -> Result<(), EngineError> {
    if rough_faults::should_fire("job.run.fail") {
        return Err(daemon_error("injected job failure (fault plan)"));
    }
    let scenario = wire::decode_scenario(scenario_wire)?;

    // Schedule with whatever cost measurements previous jobs accumulated; an
    // unreadable or absent table degrades to the static cost model.
    let cost_table = {
        let _cost = shared.cost_lock.lock().expect("cost lock poisoned");
        CostTable::load(&shared.cost_table_path).unwrap_or_default()
    };
    let build_config = || {
        let event_shared = Arc::clone(shared);
        RunConfig::new()
            .executor_arc(Arc::clone(executor))
            .scheduler(CostOrdered::calibrated(cost_table))
            .checkpoint(checkpoint_path)
            .observer(FnObserver(move |event: &rough_engine::RunEvent| {
                let frame = ServiceEvent::from_run_event(event).encode(job);
                event_shared.broadcast(job, &frame);
            }))
    };

    // A partial checkpoint from a previous daemon life resumes instead of
    // recomputing — but only when it actually belongs to this scenario.
    let resumable = checkpoint::read(checkpoint_path)
        .map(|ckpt| ckpt.header.fingerprint == fingerprint)
        .unwrap_or(false);
    let run = if resumable {
        Run::resume(checkpoint_path, build_config())?
    } else {
        Run::new(&scenario, build_config())?
    };
    let plan = run.plan().clone();
    let report = run.execute()?;

    // Feed the calibration loop: fold this job's measured unit times into the
    // persisted cost table (re-read under the cost lock so concurrent
    // runners don't lose each other's samples). Calibration is best-effort —
    // a failed save never fails the job.
    {
        let _cost = shared.cost_lock.lock().expect("cost lock poisoned");
        let mut table = CostTable::load(&shared.cost_table_path).unwrap_or_default();
        if table.absorb(&plan, &report) > 0 {
            table.save(&shared.cost_table_path).ok();
        }
    }

    // Settle the artifact: scrub checkpoint churn, then publish it as the
    // content-addressed cached report.
    checkpoint::compact(checkpoint_path)?;
    let mut queue = shared.queue.lock().expect("queue poisoned");
    queue.publish_report(job, fingerprint)
}
