//! `roughsim-client` — CLI client of the campaign daemon.
//!
//! ```text
//! roughsim-client submit --preset NAME [--watch] [--csv PATH] [--addr HOST:PORT]
//! roughsim-client fetch --fingerprint HEX --csv PATH [--addr HOST:PORT]
//! roughsim-client status [--addr HOST:PORT]
//! roughsim-client shutdown [--addr HOST:PORT]
//! ```
//!
//! `submit --watch` streams the daemon's typed run events to stderr and, when
//! `--csv` is given, fetches the finished report and writes its CSV rows.
//! `fetch` retrieves a previously cached report by scenario fingerprint (the
//! hex value `submit` prints). The daemon address defaults to
//! `127.0.0.1:7171` or `ROUGHSIMD_ADDR`.

use rough_engine::CampaignReport;
use rough_service::{presets, Client, ServiceEvent};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ! {
    eprintln!("usage: roughsim-client <submit|fetch|status|shutdown> [options]");
    eprintln!("  submit --preset NAME [--watch] [--csv PATH] [--addr HOST:PORT]");
    eprintln!("  fetch --fingerprint HEX --csv PATH [--addr HOST:PORT]");
    eprintln!("  status | shutdown [--addr HOST:PORT]");
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("roughsim-client: {message}");
    std::process::exit(1);
}

fn write_csv(report: &CampaignReport, path: &str) {
    let mut text = CampaignReport::csv_header().to_owned();
    for row in report.csv_rows() {
        text.push('\n');
        text.push_str(&row);
    }
    text.push('\n');
    if let Err(e) = std::fs::write(path, text) {
        fail(format!("cannot write {path}: {e}"));
    }
    eprintln!("wrote {path}");
}

fn print_event(event: &ServiceEvent) {
    match event {
        ServiceEvent::UnitStarted { unit, case } => {
            eprintln!("  unit {unit} started (case {case})");
        }
        ServiceEvent::UnitCompleted { unit, value, .. } => {
            eprintln!("  unit {unit} completed: {value:.6}");
        }
        ServiceEvent::CaseCompleted { case, units } => {
            eprintln!("  case {case} completed ({units} units)");
        }
        ServiceEvent::WorkerLost { worker, requeued } => {
            eprintln!("  worker {worker} lost; {requeued} units re-queued");
        }
        ServiceEvent::CheckpointWritten { units_recorded } => {
            eprintln!("  checkpoint: {units_recorded} records");
        }
        ServiceEvent::Finished {
            units,
            wall_seconds,
        } => {
            eprintln!("  finished: {units} units in {wall_seconds:.1} s");
        }
    }
}

fn main() {
    // Keep worker-mode symmetry with roughsimd: if this binary is ever used
    // as an executor worker target, serve and exit before CLI parsing.
    rough_engine::maybe_serve_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        usage();
    };
    let addr = arg_value(&args, "--addr")
        .or_else(|| std::env::var("ROUGHSIMD_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:7171".to_owned());
    let client = Client::new(&addr);

    match command.as_str() {
        "submit" => {
            let Some(preset) = arg_value(&args, "--preset") else {
                usage();
            };
            let scenario = presets::by_name(&preset).unwrap_or_else(|e| fail(e));
            let watch = args.iter().any(|a| a == "--watch");
            let csv = arg_value(&args, "--csv");
            if watch {
                let (submission, outcome) = client
                    .submit_watch(&scenario, print_event)
                    .unwrap_or_else(|e| fail(e));
                eprintln!(
                    "job {} fingerprint {:016x} (cached: {})",
                    submission.job, submission.fingerprint, submission.cached
                );
                if let Err(message) = outcome {
                    fail(format!("job failed: {message}"));
                }
                if let Some(path) = csv {
                    match client.fetch_report(submission.fingerprint) {
                        Ok(Some(report)) => write_csv(&report, &path),
                        Ok(None) => fail("job finished but no report is cached"),
                        Err(e) => fail(e),
                    }
                }
            } else {
                let submission = client.submit(&scenario).unwrap_or_else(|e| fail(e));
                println!("{:016x}", submission.fingerprint);
                eprintln!(
                    "job {} fingerprint {:016x} (cached: {})",
                    submission.job, submission.fingerprint, submission.cached
                );
                if csv.is_some() {
                    fail("--csv requires --watch (the report exists only after the job runs)");
                }
            }
        }
        "fetch" => {
            let (Some(fingerprint), Some(path)) =
                (arg_value(&args, "--fingerprint"), arg_value(&args, "--csv"))
            else {
                usage();
            };
            let fingerprint = u64::from_str_radix(fingerprint.trim_start_matches("0x"), 16)
                .unwrap_or_else(|_| fail(format!("bad fingerprint `{fingerprint}`")));
            match client.fetch_report(fingerprint) {
                Ok(Some(report)) => write_csv(&report, &path),
                Ok(None) => fail(format!("no cached report for {fingerprint:016x}")),
                Err(e) => fail(e),
            }
        }
        "status" => {
            let status = client.status().unwrap_or_else(|e| fail(e));
            println!(
                "queued {} running {} done {} failed {}",
                status.queued, status.running, status.done, status.failed
            );
        }
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| fail(e));
            eprintln!("daemon acknowledged shutdown");
        }
        _ => usage(),
    }
}
