//! `roughsim-client` — CLI client of the campaign daemon.
//!
//! ```text
//! roughsim-client submit --preset NAME [--priority high|normal|batch] [--watch] [--csv PATH] [--addr HOST:PORT]
//! roughsim-client sweep --preset NAME [--watch] [--csv PATH] [--export DIR [--base NAME]]
//! roughsim-client fetch --fingerprint HEX --csv PATH [--addr HOST:PORT]
//! roughsim-client status [--addr HOST:PORT]
//! roughsim-client shutdown [--addr HOST:PORT]
//! ```
//!
//! `submit --priority` picks the scheduling class (default `normal`):
//! `high` jobs dispatch before the backlog, `batch` jobs yield until the
//! queue's aging promotes them. `submit --watch` streams the daemon's typed
//! run events to stderr and, when `--csv` is given, fetches the finished
//! report and writes its CSV rows. `status` prints the queue counters
//! followed by one `job <id> <priority> <state>` line per known job.
//! `sweep` drives a broadband adaptive sweep preset through the daemon round
//! by round (each round dedupes against the daemon's report cache), prints
//! per-point progress, and writes the exported `Z(f)` table (`--csv`) and/or
//! the full CSV + Touchstone + SPICE export set (`--export DIR`); its JSON
//! summary goes to stdout. `fetch` retrieves a previously cached report by
//! scenario fingerprint (the hex value `submit` prints). The daemon address
//! defaults to `127.0.0.1:7171` or `ROUGHSIMD_ADDR`.

use rough_engine::{CampaignReport, FnObserver, RunEvent};
use rough_service::{presets, Client, DaemonEvaluator, Priority, ServiceEvent};
use rough_sweep::FrequencySweep;
use std::sync::Arc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ! {
    eprintln!("usage: roughsim-client <submit|sweep|fetch|status|shutdown> [options]");
    eprintln!("  submit --preset NAME [--priority high|normal|batch] [--watch] [--csv PATH] [--addr HOST:PORT]");
    eprintln!("  sweep --preset NAME [--watch] [--csv PATH] [--export DIR [--base NAME]]");
    eprintln!("  fetch --fingerprint HEX --csv PATH [--addr HOST:PORT]");
    eprintln!("  status | shutdown [--addr HOST:PORT]");
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("roughsim-client: {message}");
    std::process::exit(1);
}

fn write_csv(report: &CampaignReport, path: &str) {
    let mut text = CampaignReport::csv_header().to_owned();
    for row in report.csv_rows() {
        text.push('\n');
        text.push_str(&row);
    }
    text.push('\n');
    if let Err(e) = std::fs::write(path, text) {
        fail(format!("cannot write {path}: {e}"));
    }
    eprintln!("wrote {path}");
}

fn print_event(event: &ServiceEvent) {
    match event {
        ServiceEvent::UnitStarted { unit, case } => {
            eprintln!("  unit {unit} started (case {case})");
        }
        ServiceEvent::UnitCompleted {
            unit,
            value,
            degraded,
            ..
        } => {
            let marker = if *degraded { " (degraded solve)" } else { "" };
            eprintln!("  unit {unit} completed: {value:.6}{marker}");
        }
        ServiceEvent::CaseCompleted { case, units } => {
            eprintln!("  case {case} completed ({units} units)");
        }
        ServiceEvent::WorkerLost { worker, requeued } => {
            eprintln!("  worker {worker} lost; {requeued} units re-queued");
        }
        ServiceEvent::FleetDegraded { active, configured } => {
            eprintln!("  fleet degraded: {active}/{configured} workers (circuit breaker open)");
        }
        ServiceEvent::CheckpointWritten { units_recorded } => {
            eprintln!("  checkpoint: {units_recorded} records");
        }
        ServiceEvent::Finished {
            units,
            wall_seconds,
        } => {
            eprintln!("  finished: {units} units in {wall_seconds:.1} s");
        }
        ServiceEvent::SweepPoint {
            solved,
            budget,
            frequency_hz,
        } => {
            eprintln!(
                "  sweep point {solved}/{budget}: {:.4} GHz",
                frequency_hz * 1e-9
            );
        }
    }
}

fn main() {
    // Keep worker-mode symmetry with roughsimd: if this binary is ever used
    // as an executor worker target, serve and exit before CLI parsing.
    rough_engine::maybe_serve_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        usage();
    };
    let addr = arg_value(&args, "--addr")
        .or_else(|| std::env::var("ROUGHSIMD_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:7171".to_owned());
    let client = Client::new(&addr);

    match command.as_str() {
        "submit" => {
            let Some(preset) = arg_value(&args, "--preset") else {
                usage();
            };
            let scenario = presets::by_name(&preset).unwrap_or_else(|e| fail(e));
            let watch = args.iter().any(|a| a == "--watch");
            let csv = arg_value(&args, "--csv");
            let priority = match arg_value(&args, "--priority") {
                Some(token) => Priority::parse(&token).unwrap_or_else(|| {
                    fail(format!(
                        "bad priority `{token}` (expected high, normal or batch)"
                    ))
                }),
                None => Priority::Normal,
            };
            if watch {
                let (submission, outcome) = client
                    .submit_watch_priority(&scenario, priority, print_event)
                    .unwrap_or_else(|e| fail(e));
                eprintln!(
                    "job {} fingerprint {:016x} (cached: {})",
                    submission.job, submission.fingerprint, submission.cached
                );
                if let Err(message) = outcome {
                    fail(format!("job failed: {message}"));
                }
                if let Some(path) = csv {
                    match client.fetch_report(submission.fingerprint) {
                        Ok(Some(report)) => write_csv(&report, &path),
                        Ok(None) => fail("job finished but no report is cached"),
                        Err(e) => fail(e),
                    }
                }
            } else {
                let submission = client
                    .submit_priority(&scenario, priority)
                    .unwrap_or_else(|e| fail(e));
                println!("{:016x}", submission.fingerprint);
                eprintln!(
                    "job {} fingerprint {:016x} (cached: {})",
                    submission.job, submission.fingerprint, submission.cached
                );
                if csv.is_some() {
                    fail("--csv requires --watch (the report exists only after the job runs)");
                }
            }
        }
        "sweep" => {
            let Some(preset) = arg_value(&args, "--preset") else {
                usage();
            };
            let sweep = presets::sweep_by_name(&preset).unwrap_or_else(|e| fail(e));
            let watch = args.iter().any(|a| a == "--watch");
            let csv = arg_value(&args, "--csv");
            let export_dir = arg_value(&args, "--export");
            let stack = *sweep.template().stack();
            let mut evaluator = DaemonEvaluator::new(&client, |event: &ServiceEvent| {
                if watch {
                    print_event(event);
                }
            });
            let driver =
                FrequencySweep::new(sweep).observer(Arc::new(FnObserver(|event: &RunEvent| {
                    if let RunEvent::SweepPointSolved {
                        frequency_hz,
                        value,
                        solved,
                        budget,
                    } = event
                    {
                        eprintln!(
                            "sweep point {solved}/{budget}: {:.4} GHz -> K = {value:.6}",
                            frequency_hz * 1e-9
                        );
                    }
                })));
            let outcome = driver.run(&mut evaluator).unwrap_or_else(|e| fail(e));
            eprintln!(
                "sweep done: {} points in {} rounds (converged {}, fit {}, daemon-cached rounds {}/{})",
                outcome.points.len(),
                outcome.rounds,
                outcome.converged,
                outcome.fit.describe(),
                evaluator.cached_rounds(),
                evaluator.rounds(),
            );
            if let Some(path) = &csv {
                if let Err(e) = std::fs::write(path, rough_sweep::zf_csv(&outcome, &stack)) {
                    fail(format!("cannot write {path}: {e}"));
                }
                eprintln!("wrote {path}");
            }
            if let Some(dir) = &export_dir {
                let base = arg_value(&args, "--base").unwrap_or_else(|| preset.clone());
                match rough_sweep::write_exports(&outcome, &stack, dir, &base) {
                    Ok(paths) => {
                        for path in paths {
                            eprintln!("wrote {}", path.display());
                        }
                    }
                    Err(e) => fail(format!("cannot export to {dir}: {e}")),
                }
            }
            print!("{}", outcome.to_json());
        }
        "fetch" => {
            let (Some(fingerprint), Some(path)) =
                (arg_value(&args, "--fingerprint"), arg_value(&args, "--csv"))
            else {
                usage();
            };
            let fingerprint = u64::from_str_radix(fingerprint.trim_start_matches("0x"), 16)
                .unwrap_or_else(|_| fail(format!("bad fingerprint `{fingerprint}`")));
            match client.fetch_report(fingerprint) {
                Ok(Some(report)) => write_csv(&report, &path),
                Ok(None) => fail(format!("no cached report for {fingerprint:016x}")),
                Err(e) => fail(e),
            }
        }
        "status" => {
            let (status, jobs) = client.status_detail().unwrap_or_else(|e| fail(e));
            println!(
                "queued {} running {} done {} failed {} quarantined {}",
                status.queued, status.running, status.done, status.failed, status.quarantined
            );
            for job in jobs {
                println!("job {} {} {}", job.id, job.priority.label(), job.state);
            }
        }
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| fail(e));
            eprintln!("daemon acknowledged shutdown");
        }
        _ => usage(),
    }
}
