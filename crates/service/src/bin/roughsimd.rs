//! `roughsimd` — the campaign daemon.
//!
//! ```text
//! roughsimd [--addr HOST:PORT] [--state-dir DIR]
//! ```
//!
//! Binds the service address (default `127.0.0.1:7171`, or `ROUGHSIMD_ADDR`),
//! keeps durable queue/checkpoint/report state under the state directory
//! (default `roughsimd-state`, or `ROUGHSIMD_STATE`), and executes campaigns
//! with the executor named by `ROUGHSIM_EXECUTOR` (`threads[:N]`, `serial`,
//! `subprocess[:N]`, `socket[:N]`; default: hardware-sized thread pool).
//!
//! With `ROUGHSIM_EXECUTOR=socket:N` the daemon re-executes *itself* as its
//! persistent workers — which is why `main` consults
//! [`rough_engine::maybe_serve_worker`] before doing anything else.

use rough_service::{Daemon, DaemonConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    // Worker mode: when the engine spawned this process as a socket or
    // subprocess worker, serve units and exit without touching the daemon
    // path. Must run before anything else.
    rough_engine::maybe_serve_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: roughsimd [--addr HOST:PORT] [--state-dir DIR]");
        eprintln!("  env: ROUGHSIMD_ADDR, ROUGHSIMD_STATE, ROUGHSIM_EXECUTOR");
        return;
    }
    let addr = arg_value(&args, "--addr")
        .or_else(|| std::env::var("ROUGHSIMD_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:7171".to_owned());
    let state_dir = arg_value(&args, "--state-dir")
        .or_else(|| std::env::var("ROUGHSIMD_STATE").ok())
        .unwrap_or_else(|| "roughsimd-state".to_owned());

    match Daemon::start(DaemonConfig::new(&addr, &state_dir)) {
        Ok(daemon) => {
            eprintln!(
                "roughsimd listening on {} (state: {state_dir})",
                daemon.addr()
            );
            daemon.join();
            eprintln!("roughsimd stopped");
        }
        Err(e) => {
            eprintln!("roughsimd: {e}");
            std::process::exit(1);
        }
    }
}
