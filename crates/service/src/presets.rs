//! Named scenario presets for the client binary.
//!
//! `roughsim-client submit --preset <name>` needs scenarios both ends agree
//! on; these constructors are the single source of truth. `fig5-reduced`
//! deliberately matches the repo's golden-report regression scenario
//! (`tests/golden_reports.rs`) so a daemon-computed report can be diffed
//! against `tests/golden/fig5_reduced_corrected.csv` — the CI smoke test does
//! exactly that.

use rough_core::{MatrixFreePolicy, OperatorRepr, RoughnessSpec, SolverKind};
use rough_em::material::{Conductor, Dielectric, Stackup};
use rough_em::units::{GigaHertz, Micrometers};
use rough_engine::{EngineError, Scenario, ScenarioBuilder, SweepScenario};
use rough_surface::RoughSurface;

fn paper_stack() -> Stackup {
    Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide())
}

/// The shared reduced-Fig. 5 geometry: deterministic half-spheroid
/// protrusion, three frequencies, coarse 8-cell grid. `fig5-reduced` and
/// `fig5-reduced-mf` differ only in solver/operator representation.
fn fig5_reduced_base() -> ScenarioBuilder {
    let tile = 12.0e-6;
    let (height, base_radius) = (5.8e-6, 4.7e-6);
    let cells = 8;
    let surface = RoughSurface::from_fn(cells, tile, |x, y| {
        let dx = x - 0.5 * tile;
        let dy = y - 0.5 * tile;
        let r2 = (dx * dx + dy * dy) / (base_radius * base_radius);
        if r2 < 1.0 {
            height * (1.0 - r2).sqrt()
        } else {
            0.0
        }
    });
    Scenario::builder(paper_stack())
        .name("fig5-golden-reduced")
        .roughness(RoughnessSpec::deterministic(Micrometers::new(12.0)))
        .frequencies([
            GigaHertz::new(2.0).into(),
            GigaHertz::new(6.0).into(),
            GigaHertz::new(10.0).into(),
        ])
        .cells_per_side(cells)
        .deterministic(surface)
}

/// Reduced Fig. 5: the deterministic half-spheroid protrusion swept over
/// three frequencies on a coarse 8-cell grid — identical to the golden-report
/// scenario, so its report diffs cleanly against the checked-in snapshot.
pub fn fig5_reduced() -> Scenario {
    fig5_reduced_base()
        .build()
        .expect("valid reduced Fig. 5 scenario")
}

/// The reduced Fig. 5 scenario solved through the matrix-free operator with
/// the pinned-equivalence preconditioned GMRES settings
/// (`tests/krylov_equivalence.rs`). Keeps the same scenario *name* as
/// [`fig5_reduced`] on purpose: under `ROUGHSIM_FAULTS=solver.krylov.breakdown:*`
/// every solve escalates down the degradation ladder to the dense `DirectLu`
/// rung, whose results are bit-identical to the dense path — so the chaos
/// CI job diffs this preset's report byte-for-byte against the same golden
/// snapshot. The wire fingerprint still differs (solver and operator
/// representation are hashed), so the daemon caches the two presets
/// separately.
pub fn fig5_reduced_matrix_free() -> Scenario {
    fig5_reduced_base()
        .solver(SolverKind::Gmres {
            tolerance: 1e-12,
            restart: 60,
        })
        .operator_repr(OperatorRepr::MatrixFree(MatrixFreePolicy::default()))
        .build()
        .expect("valid matrix-free reduced Fig. 5 scenario")
}

/// Reduced Fig. 6-style ensemble: a tiny Monte-Carlo campaign over two
/// frequencies with plan-time-seeded realizations.
pub fn fig6_reduced() -> Scenario {
    Scenario::builder(paper_stack())
        .name("fig6-golden-reduced")
        .roughness(RoughnessSpec::gaussian(
            Micrometers::new(1.0),
            Micrometers::new(1.0),
        ))
        .frequencies([GigaHertz::new(2.0).into(), GigaHertz::new(8.0).into()])
        .cells_per_side(6)
        .max_kl_modes(3)
        .monte_carlo(3)
        .master_seed(0x2009)
        .build()
        .expect("valid reduced Fig. 6 scenario")
}

/// Resolves a preset by its CLI name.
///
/// # Errors
///
/// Returns [`EngineError::InvalidScenario`] for an unknown name.
pub fn by_name(name: &str) -> Result<Scenario, EngineError> {
    match name {
        "fig5-reduced" => Ok(fig5_reduced()),
        "fig5-reduced-mf" => Ok(fig5_reduced_matrix_free()),
        "fig6-reduced" => Ok(fig6_reduced()),
        other => Err(EngineError::InvalidScenario(format!(
            "unknown preset `{other}` (available: fig5-reduced, fig5-reduced-mf, fig6-reduced)"
        ))),
    }
}

/// Reduced broadband sweep of the Fig. 5 half-spheroid: exactly three
/// log-spaced points over 2–10 GHz (the budget equals the coarse scan, so no
/// refinement happens) — the smallest sweep that exercises the whole
/// sweep-through-daemon path, and the one the CI smoke diffs against its
/// golden `Z(f)` table.
pub fn fig5_band_reduced() -> SweepScenario {
    SweepScenario::builder(
        fig5_reduced(),
        GigaHertz::new(2.0).into(),
        GigaHertz::new(10.0).into(),
    )
    .coarse_points(3)
    .max_points(3)
    .tolerance(1e-3)
    .build()
    .expect("valid reduced band sweep")
}

/// Resolves a sweep preset by its CLI name.
///
/// # Errors
///
/// Returns [`EngineError::InvalidScenario`] for an unknown name.
pub fn sweep_by_name(name: &str) -> Result<SweepScenario, EngineError> {
    match name {
        "fig5-band-reduced" => Ok(fig5_band_reduced()),
        other => Err(EngineError::InvalidScenario(format!(
            "unknown sweep preset `{other}` (available: fig5-band-reduced)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rough_engine::wire;

    #[test]
    fn presets_resolve_and_roundtrip_the_wire_format() {
        for name in ["fig5-reduced", "fig5-reduced-mf", "fig6-reduced"] {
            let scenario = by_name(name).unwrap();
            let encoded = wire::encode_scenario(&scenario);
            let decoded = wire::decode_scenario(&encoded).unwrap();
            assert_eq!(
                wire::scenario_fingerprint(&scenario),
                wire::scenario_fingerprint(&decoded),
                "{name}: fingerprint must be stable across the wire"
            );
        }
        assert!(by_name("fig9-imaginary").is_err());
    }

    #[test]
    fn matrix_free_fig5_shares_the_name_but_not_the_fingerprint() {
        // Same scenario name (so chaos-run reports diff against the same
        // golden CSV), different fingerprint (so the report cache never
        // serves the dense preset's report for the matrix-free one).
        let dense = fig5_reduced();
        let mf = fig5_reduced_matrix_free();
        assert_eq!(dense.name(), mf.name());
        assert_ne!(
            wire::scenario_fingerprint(&dense),
            wire::scenario_fingerprint(&mf)
        );
    }

    #[test]
    fn sweep_preset_resolves_and_roundtrips_the_wire_format() {
        let sweep = sweep_by_name("fig5-band-reduced").unwrap();
        assert_eq!(sweep.coarse_points(), sweep.max_points()); // no refinement
        let encoded = rough_engine::sweep::encode_sweep(&sweep);
        let decoded = rough_engine::sweep::decode_sweep(&encoded).unwrap();
        assert_eq!(
            rough_engine::sweep::sweep_fingerprint(&sweep),
            rough_engine::sweep::sweep_fingerprint(&decoded),
        );
        assert!(sweep_by_name("fig9-band-imaginary").is_err());
    }
}
