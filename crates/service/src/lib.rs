//! # rough-service
//!
//! The campaign service layer: a long-running daemon (`roughsimd`) that
//! accepts [`rough_engine::Scenario`] submissions over the engine's socket
//! framing, queues them durably with priority classes
//! ([`queue::Priority`]), executes up to `ROUGHSIMD_JOBS` campaigns
//! concurrently — each runner on its own core-budget slice — with any
//! configured executor (including the distributed
//! [`rough_engine::SocketExecutor`]), streams typed run events to watching
//! clients, and serves finished [`rough_engine::CampaignReport`]s from a
//! content-addressed cache keyed by scenario fingerprint — plus the matching
//! blocking [`Client`] (`roughsim-client`).
//!
//! Module map:
//!
//! * [`protocol`] — service frame kinds (32+) and payload codecs over
//!   [`rough_engine::frame`], evolving by appended fields so old and new
//!   peers interoperate.
//! * [`queue`] — the persistent JSONL job journal with open-time compaction,
//!   priority/aging dispatch, per-job engine checkpoints and the published
//!   report cache.
//! * [`daemon`] — accept loop, connection handlers, the runner pool with
//!   restart-resume of every interrupted campaign, and event broadcast to
//!   watchers.
//! * [`client`] — blocking submit / watch / fetch / status / shutdown.
//! * [`sweep`] — [`DaemonEvaluator`], running broadband adaptive sweeps
//!   round by round through the daemon (each round dedupes against the
//!   report cache).
//! * [`presets`] — named scenarios and sweeps shared by the client CLI and
//!   CI smoke tests.
//!
//! The report cache is bounded by the `ROUGHSIMD_CACHE_BUDGET` environment
//! variable (bytes; unset = unbounded): least-recently-used reports are
//! evicted first, with recency journaled so the order survives restarts.
//!
//! Durability story: submissions are journaled before they are acknowledged;
//! campaigns checkpoint per unit; a daemon killed at any point restarts with
//! *all* unfinished jobs re-queued — however many were running concurrently
//! — and resumes each via [`rough_engine::Run::resume`] — reports come out
//! bit-identical to an uninterrupted run, which the service integration
//! tests pin.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod daemon;
pub mod presets;
pub mod protocol;
pub mod queue;
pub mod sweep;

pub use client::{Client, Submission};
pub use daemon::{Daemon, DaemonConfig, JOBS_ENV, JOB_RETRIES_ENV};
pub use protocol::{JobSummary, QueueStatus, ServiceEvent};
pub use queue::{Job, JobQueue, JobState, Priority, CACHE_BUDGET_ENV};
pub use sweep::DaemonEvaluator;
