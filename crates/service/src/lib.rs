//! # rough-service
//!
//! The campaign service layer: a long-running daemon (`roughsimd`) that
//! accepts [`rough_engine::Scenario`] submissions over the engine's socket
//! framing, queues them durably, executes them one at a time with any
//! configured executor (including the distributed
//! [`rough_engine::SocketExecutor`]), streams typed run events to watching
//! clients, and serves finished [`rough_engine::CampaignReport`]s from a
//! content-addressed cache keyed by scenario fingerprint — plus the matching
//! blocking [`Client`] (`roughsim-client`).
//!
//! Module map:
//!
//! * [`protocol`] — service frame kinds (32+) and payload codecs over
//!   [`rough_engine::frame`].
//! * [`queue`] — the persistent JSONL job journal with open-time compaction,
//!   per-job engine checkpoints and the published report cache.
//! * [`daemon`] — accept loop, connection handlers, the single-campaign
//!   runner with restart-resume, and event broadcast to watchers.
//! * [`client`] — blocking submit / watch / fetch / status / shutdown.
//! * [`sweep`] — [`DaemonEvaluator`], running broadband adaptive sweeps
//!   round by round through the daemon (each round dedupes against the
//!   report cache).
//! * [`presets`] — named scenarios and sweeps shared by the client CLI and
//!   CI smoke tests.
//!
//! The report cache is bounded by the `ROUGHSIMD_CACHE_BUDGET` environment
//! variable (bytes; unset = unbounded): least-recently-used reports are
//! evicted first, with recency journaled so the order survives restarts.
//!
//! Durability story: submissions are journaled before they are acknowledged;
//! campaigns checkpoint per unit; a daemon killed at any point restarts with
//! unfinished jobs re-queued and resumes them via [`rough_engine::Run::resume`]
//! — reports come out bit-identical to an uninterrupted run, which the
//! service integration tests pin.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod daemon;
pub mod presets;
pub mod protocol;
pub mod queue;
pub mod sweep;

pub use client::{Client, Submission};
pub use daemon::{Daemon, DaemonConfig};
pub use protocol::{QueueStatus, ServiceEvent};
pub use queue::{Job, JobQueue, JobState, CACHE_BUDGET_ENV};
pub use sweep::DaemonEvaluator;
