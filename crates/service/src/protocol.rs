//! Wire protocol of the campaign service.
//!
//! The daemon speaks the engine's length-prefixed frame format
//! ([`rough_engine::frame`]) on the same socket transports the distributed
//! executor uses; service frames claim the kind space from 32 upward so a
//! service endpoint can never be confused with an executor worker.
//!
//! Conversation shapes:
//!
//! * **Submit**: client sends [`kind::SUBMIT`] (wire-encoded scenario + watch
//!   flag + priority class), daemon replies [`kind::ACCEPTED`] (job id,
//!   scenario fingerprint, cached flag). When watching, the daemon then
//!   streams [`kind::EVENT`] frames (typed [`ServiceEvent`]s) until a
//!   terminal [`kind::JOB_DONE`].
//! * **Fetch**: client sends [`kind::FETCH`] (fingerprint), daemon replies
//!   [`kind::REPORT`] carrying the cached campaign checkpoint text, or
//!   [`kind::NOT_FOUND`].
//! * **Status**: [`kind::STATUS`] → [`kind::STATUS_REPORT`] (queue depths
//!   plus a per-job `(id, priority, state)` table).
//! * **Shutdown**: [`kind::SHUTDOWN`] → [`kind::BYE`], then the daemon drains
//!   and exits.
//!
//! # Version tolerance
//!
//! Frames evolve by *appending* fields, never by reordering or changing
//! existing ones. Decoders read sequentially and never reject trailing
//! bytes, so an old peer simply ignores fields it predates; a new decoder
//! checks [`rough_engine::frame::PayloadReader::remaining`] and substitutes
//! the historical default when an optional tail is absent. Concretely: a
//! [`kind::SUBMIT`] without the priority word decodes as `normal`, and a
//! [`kind::STATUS_REPORT`] without the job table decodes with an empty one.

use crate::queue::Priority;
use rough_engine::frame::{Frame, PayloadWriter};
use rough_engine::{EngineError, RunEvent};

/// Service frame kinds (executor kinds occupy 1..=8; service starts at 32).
pub mod kind {
    /// Client → daemon: submit a scenario (`scenario wire text`, `watch`).
    pub const SUBMIT: u8 = 32;
    /// Daemon → client: submission accepted (`job`, `fingerprint`, `cached`).
    pub const ACCEPTED: u8 = 33;
    /// Daemon → client: one typed run event of a watched job.
    pub const EVENT: u8 = 34;
    /// Daemon → client: terminal job outcome (`job`, `ok`, `error`).
    pub const JOB_DONE: u8 = 35;
    /// Client → daemon: fetch a cached report by scenario fingerprint.
    pub const FETCH: u8 = 36;
    /// Daemon → client: cached report (`fingerprint`, checkpoint JSONL text).
    pub const REPORT: u8 = 37;
    /// Daemon → client: no cached report under that fingerprint.
    pub const NOT_FOUND: u8 = 38;
    /// Client → daemon: request queue counters.
    pub const STATUS: u8 = 39;
    /// Daemon → client: queue counters (`queued`, `running`, `done`, `failed`).
    pub const STATUS_REPORT: u8 = 40;
    /// Client → daemon: stop accepting work and exit after the current job.
    pub const SHUTDOWN: u8 = 41;
    /// Daemon → client: shutdown acknowledged.
    pub const BYE: u8 = 42;
}

fn protocol_error(reason: impl Into<String>) -> EngineError {
    EngineError::Socket(format!("service protocol: {}", reason.into()))
}

/// The subset of [`RunEvent`] the daemon streams to watching clients,
/// flattened into wire-friendly scalars.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceEvent {
    /// An executor picked up a unit.
    UnitStarted {
        /// Unit id (position in the plan).
        unit: u64,
        /// Index of the owning case.
        case: u64,
    },
    /// A unit finished; its value survives bit-exactly.
    UnitCompleted {
        /// Unit id.
        unit: u64,
        /// Index of the owning case.
        case: u64,
        /// The committed enhancement-factor value.
        value: f64,
        /// True when the unit's solve escalated off the requested solver
        /// (e.g. a Krylov breakdown rescued by the dense fallback).
        degraded: bool,
    },
    /// Every unit of one case completed.
    CaseCompleted {
        /// Case index.
        case: u64,
        /// Units the case scheduled.
        units: u64,
    },
    /// A distributed worker died; its units were re-queued.
    WorkerLost {
        /// Worker index within its executor.
        worker: u64,
        /// Units returned to the dispatch queue.
        requeued: u64,
    },
    /// The socket executor's circuit breaker stopped respawning a flapping
    /// worker; the run continues on the surviving fleet.
    FleetDegraded {
        /// Workers still serving the run.
        active: u64,
        /// Workers the executor was configured with.
        configured: u64,
    },
    /// A record was durably appended to the job checkpoint.
    CheckpointWritten {
        /// Records now resident in the checkpoint.
        units_recorded: u64,
    },
    /// The run finished.
    Finished {
        /// Units evaluated.
        units: u64,
        /// Wall-clock seconds of the run.
        wall_seconds: f64,
    },
    /// An adaptive sweep solved one frequency point.
    SweepPoint {
        /// Points solved so far.
        solved: u64,
        /// Total sweep point budget.
        budget: u64,
        /// The solved frequency in Hz.
        frequency_hz: f64,
    },
}

impl ServiceEvent {
    /// Maps an engine [`RunEvent`] onto its wire form.
    pub fn from_run_event(event: &RunEvent) -> Self {
        match event {
            RunEvent::UnitStarted { unit, case_index } => ServiceEvent::UnitStarted {
                unit: *unit as u64,
                case: *case_index as u64,
            },
            RunEvent::UnitCompleted { record, .. } => ServiceEvent::UnitCompleted {
                unit: record.unit as u64,
                case: record.case_index as u64,
                value: record.value,
                degraded: record.degraded,
            },
            RunEvent::CaseCompleted { case_index, units } => ServiceEvent::CaseCompleted {
                case: *case_index as u64,
                units: *units as u64,
            },
            RunEvent::WorkerLost { worker, requeued } => ServiceEvent::WorkerLost {
                worker: *worker as u64,
                requeued: *requeued as u64,
            },
            RunEvent::FleetDegraded { active, configured } => ServiceEvent::FleetDegraded {
                active: *active as u64,
                configured: *configured as u64,
            },
            RunEvent::CheckpointWritten { units_recorded } => ServiceEvent::CheckpointWritten {
                units_recorded: *units_recorded as u64,
            },
            RunEvent::RunFinished {
                units, wall_time, ..
            } => ServiceEvent::Finished {
                units: *units as u64,
                wall_seconds: wall_time.as_secs_f64(),
            },
            RunEvent::SweepPointSolved {
                frequency_hz,
                solved,
                budget,
                ..
            } => ServiceEvent::SweepPoint {
                solved: *solved as u64,
                budget: *budget as u64,
                frequency_hz: *frequency_hz,
            },
        }
    }

    /// Encodes the event as an [`kind::EVENT`] frame for `job`. The
    /// `degraded` flag of [`ServiceEvent::UnitCompleted`] rides as an
    /// appended trailing word, written only when set — clean-path frames are
    /// byte-identical to the pre-degradation format.
    pub fn encode(&self, job: u64) -> Frame {
        let (tag, a, b, value) = match *self {
            ServiceEvent::UnitStarted { unit, case } => (1, unit, case, 0.0),
            ServiceEvent::UnitCompleted {
                unit, case, value, ..
            } => (2, unit, case, value),
            ServiceEvent::CaseCompleted { case, units } => (3, case, units, 0.0),
            ServiceEvent::WorkerLost { worker, requeued } => (4, worker, requeued, 0.0),
            ServiceEvent::CheckpointWritten { units_recorded } => (5, units_recorded, 0, 0.0),
            ServiceEvent::Finished {
                units,
                wall_seconds,
            } => (6, units, 0, wall_seconds),
            ServiceEvent::SweepPoint {
                solved,
                budget,
                frequency_hz,
            } => (7, solved, budget, frequency_hz),
            ServiceEvent::FleetDegraded { active, configured } => (8, active, configured, 0.0),
        };
        let mut writer = PayloadWriter::new()
            .u64(job)
            .u64(tag)
            .u64(a)
            .u64(b)
            .f64_bits(value);
        if let ServiceEvent::UnitCompleted { degraded: true, .. } = self {
            writer = writer.u64(1);
        }
        writer.frame(kind::EVENT)
    }

    /// Decodes an [`kind::EVENT`] frame into `(job, event)`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Socket`] on a truncated payload or unknown tag.
    pub fn decode(frame: &Frame) -> Result<(u64, Self), EngineError> {
        let mut reader = frame.reader();
        let job = reader.u64()?;
        let tag = reader.u64()?;
        let a = reader.u64()?;
        let b = reader.u64()?;
        let value = reader.f64_bits()?;
        let event = match tag {
            1 => ServiceEvent::UnitStarted { unit: a, case: b },
            2 => ServiceEvent::UnitCompleted {
                unit: a,
                case: b,
                value,
                // Appended word, absent from frames older peers send.
                degraded: reader.remaining() >= 8 && reader.u64()? != 0,
            },
            3 => ServiceEvent::CaseCompleted { case: a, units: b },
            4 => ServiceEvent::WorkerLost {
                worker: a,
                requeued: b,
            },
            5 => ServiceEvent::CheckpointWritten { units_recorded: a },
            6 => ServiceEvent::Finished {
                units: a,
                wall_seconds: value,
            },
            7 => ServiceEvent::SweepPoint {
                solved: a,
                budget: b,
                frequency_hz: value,
            },
            8 => ServiceEvent::FleetDegraded {
                active: a,
                configured: b,
            },
            other => return Err(protocol_error(format!("unknown event tag {other}"))),
        };
        Ok((job, event))
    }
}

/// Encodes a [`kind::SUBMIT`] frame. The priority class rides as an appended
/// trailing word so daemons that predate priorities ignore it.
pub fn encode_submit(scenario_wire: &str, watch: bool, priority: Priority) -> Frame {
    PayloadWriter::new()
        .str(scenario_wire)
        .u64(u64::from(watch))
        .u64(u64::from(priority.class()))
        .frame(kind::SUBMIT)
}

/// Decodes a [`kind::SUBMIT`] frame into `(scenario wire text, watch,
/// priority)`. Frames from clients that predate priorities lack the trailing
/// class word and decode as [`Priority::Normal`]; an unknown class (from a
/// newer peer) also degrades to `Normal` rather than failing the submit.
///
/// # Errors
///
/// Returns [`EngineError::Socket`] on a truncated payload.
pub fn decode_submit(frame: &Frame) -> Result<(String, bool, Priority), EngineError> {
    let mut reader = frame.reader();
    let wire = reader.str()?;
    let watch = reader.u64()? != 0;
    let priority = if reader.remaining() >= 8 {
        u8::try_from(reader.u64()?)
            .ok()
            .and_then(Priority::from_class)
            .unwrap_or_default()
    } else {
        Priority::Normal
    };
    Ok((wire, watch, priority))
}

/// Encodes a [`kind::ACCEPTED`] frame.
pub fn encode_accepted(job: u64, fingerprint: u64, cached: bool) -> Frame {
    PayloadWriter::new()
        .u64(job)
        .u64(fingerprint)
        .u64(u64::from(cached))
        .frame(kind::ACCEPTED)
}

/// Decodes a [`kind::ACCEPTED`] frame into `(job, fingerprint, cached)`.
///
/// # Errors
///
/// Returns [`EngineError::Socket`] on a truncated payload.
pub fn decode_accepted(frame: &Frame) -> Result<(u64, u64, bool), EngineError> {
    let mut reader = frame.reader();
    Ok((reader.u64()?, reader.u64()?, reader.u64()? != 0))
}

/// Encodes a [`kind::JOB_DONE`] frame (`error` is empty on success).
pub fn encode_job_done(job: u64, result: Result<(), &str>) -> Frame {
    PayloadWriter::new()
        .u64(job)
        .u64(u64::from(result.is_ok()))
        .str(result.err().unwrap_or(""))
        .frame(kind::JOB_DONE)
}

/// Decodes a [`kind::JOB_DONE`] frame into `(job, outcome)`.
///
/// # Errors
///
/// Returns [`EngineError::Socket`] on a truncated payload.
pub fn decode_job_done(frame: &Frame) -> Result<(u64, Result<(), String>), EngineError> {
    let mut reader = frame.reader();
    let job = reader.u64()?;
    let ok = reader.u64()? != 0;
    let error = reader.str()?;
    Ok((job, if ok { Ok(()) } else { Err(error) }))
}

/// Encodes a [`kind::FETCH`] frame.
pub fn encode_fetch(fingerprint: u64) -> Frame {
    PayloadWriter::new().u64(fingerprint).frame(kind::FETCH)
}

/// Decodes a [`kind::FETCH`] frame into the requested fingerprint.
///
/// # Errors
///
/// Returns [`EngineError::Socket`] on a truncated payload.
pub fn decode_fetch(frame: &Frame) -> Result<u64, EngineError> {
    frame.reader().u64()
}

/// Encodes a [`kind::REPORT`] frame carrying cached checkpoint text.
pub fn encode_report(fingerprint: u64, checkpoint_text: &str) -> Frame {
    PayloadWriter::new()
        .u64(fingerprint)
        .str(checkpoint_text)
        .frame(kind::REPORT)
}

/// Decodes a [`kind::REPORT`] frame into `(fingerprint, checkpoint text)`.
///
/// # Errors
///
/// Returns [`EngineError::Socket`] on a truncated payload.
pub fn decode_report(frame: &Frame) -> Result<(u64, String), EngineError> {
    let mut reader = frame.reader();
    Ok((reader.u64()?, reader.str()?))
}

/// Queue depth counters returned by [`kind::STATUS_REPORT`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStatus {
    /// Jobs waiting to run.
    pub queued: u64,
    /// Jobs currently executing (up to the daemon's `max_concurrent_jobs`).
    pub running: u64,
    /// Jobs completed with a cached report.
    pub done: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Poison jobs: failed every retry [`crate::daemon::JOB_RETRIES_ENV`]
    /// allows. Appended after the job table on the wire, so frames from
    /// older daemons decode with 0.
    pub quarantined: u64,
}

/// One row of the per-job table appended to [`kind::STATUS_REPORT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSummary {
    /// Job id.
    pub id: u64,
    /// Scheduling class.
    pub priority: Priority,
    /// Lifecycle state label: `queued`, `running`, `done`, `failed` or
    /// `quarantined`.
    pub state: &'static str,
}

fn state_tag(label: &str) -> u64 {
    match label {
        "queued" => 0,
        "running" => 1,
        "done" => 2,
        "quarantined" => 4,
        _ => 3,
    }
}

fn state_label(tag: u64) -> &'static str {
    match tag {
        0 => "queued",
        1 => "running",
        2 => "done",
        4 => "quarantined",
        // Unknown future tags (and 3) render as failed — the conservative
        // reading an old client gives a quarantined job too.
        _ => "failed",
    }
}

/// Encodes a [`kind::STATUS_REPORT`] frame: the four original counters, the
/// appended per-job table (`count`, then `(id, priority class, state tag)`
/// triples), then the appended `quarantined` counter. Clients that predate
/// the table stop after the counters; clients that predate quarantine stop
/// after the table.
pub fn encode_status_report(status: QueueStatus, jobs: &[JobSummary]) -> Frame {
    let mut writer = PayloadWriter::new()
        .u64(status.queued)
        .u64(status.running)
        .u64(status.done)
        .u64(status.failed)
        .u64(jobs.len() as u64);
    for job in jobs {
        writer = writer
            .u64(job.id)
            .u64(u64::from(job.priority.class()))
            .u64(state_tag(job.state));
    }
    writer.u64(status.quarantined).frame(kind::STATUS_REPORT)
}

/// Decodes the counters of a [`kind::STATUS_REPORT`] frame, ignoring the
/// appended job table. Frames from daemons that predate quarantine decode
/// with `quarantined == 0`.
///
/// # Errors
///
/// Returns [`EngineError::Socket`] on a truncated payload.
pub fn decode_status_report(frame: &Frame) -> Result<QueueStatus, EngineError> {
    decode_status_detail(frame).map(|(status, _)| status)
}

/// Decodes a [`kind::STATUS_REPORT`] frame including the per-job table. A
/// frame from a daemon that predates the table yields an empty one; one that
/// predates quarantine yields `quarantined == 0`.
///
/// # Errors
///
/// Returns [`EngineError::Socket`] on a truncated payload.
pub fn decode_status_detail(frame: &Frame) -> Result<(QueueStatus, Vec<JobSummary>), EngineError> {
    let mut reader = frame.reader();
    let mut status = QueueStatus {
        queued: reader.u64()?,
        running: reader.u64()?,
        done: reader.u64()?,
        failed: reader.u64()?,
        quarantined: 0,
    };
    let mut jobs = Vec::new();
    if reader.remaining() >= 8 {
        let count = reader.u64()?;
        for _ in 0..count {
            let id = reader.u64()?;
            let priority = u8::try_from(reader.u64()?)
                .ok()
                .and_then(Priority::from_class)
                .unwrap_or_default();
            let state = state_label(reader.u64()?);
            jobs.push(JobSummary {
                id,
                priority,
                state,
            });
        }
    }
    if reader.remaining() >= 8 {
        status.quarantined = reader.u64()?;
    }
    Ok((status, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_accepted_roundtrip() {
        let frame = encode_submit("scenario wire\nblock", true, Priority::Batch);
        assert_eq!(frame.kind, kind::SUBMIT);
        let (wire, watch, priority) = decode_submit(&frame).unwrap();
        assert_eq!(wire, "scenario wire\nblock");
        assert!(watch);
        assert_eq!(priority, Priority::Batch);

        let frame = encode_accepted(7, 0xDEAD_BEEF, false);
        assert_eq!(decode_accepted(&frame).unwrap(), (7, 0xDEAD_BEEF, false));
    }

    #[test]
    fn submit_frames_without_priority_decode_as_normal() {
        // A client that predates priorities: scenario + watch word only.
        let old_frame = PayloadWriter::new()
            .str("scenario wire")
            .u64(1)
            .frame(kind::SUBMIT);
        let (wire, watch, priority) = decode_submit(&old_frame).unwrap();
        assert_eq!(wire, "scenario wire");
        assert!(watch);
        assert_eq!(priority, Priority::Normal);
        // And an unknown future class degrades to normal instead of failing.
        let future = PayloadWriter::new()
            .str("scenario wire")
            .u64(0)
            .u64(99)
            .frame(kind::SUBMIT);
        assert_eq!(decode_submit(&future).unwrap().2, Priority::Normal);
    }

    #[test]
    fn events_roundtrip_with_bit_exact_values() {
        let value = 0.1f64 + 0.2;
        let events = [
            ServiceEvent::UnitStarted { unit: 3, case: 1 },
            ServiceEvent::UnitCompleted {
                unit: 3,
                case: 1,
                value,
                degraded: false,
            },
            ServiceEvent::UnitCompleted {
                unit: 3,
                case: 1,
                value,
                degraded: true,
            },
            ServiceEvent::CaseCompleted { case: 1, units: 4 },
            ServiceEvent::WorkerLost {
                worker: 0,
                requeued: 2,
            },
            ServiceEvent::FleetDegraded {
                active: 2,
                configured: 4,
            },
            ServiceEvent::CheckpointWritten { units_recorded: 5 },
            ServiceEvent::Finished {
                units: 6,
                wall_seconds: 1.25,
            },
        ];
        for event in events {
            let frame = event.encode(42);
            let (job, decoded) = ServiceEvent::decode(&frame).unwrap();
            assert_eq!(job, 42);
            assert_eq!(decoded, event);
        }
        // Bit-exactness of the completed value specifically.
        let frame = ServiceEvent::UnitCompleted {
            unit: 0,
            case: 0,
            value,
            degraded: false,
        }
        .encode(1);
        match ServiceEvent::decode(&frame).unwrap().1 {
            ServiceEvent::UnitCompleted { value: decoded, .. } => {
                assert_eq!(decoded.to_bits(), value.to_bits());
            }
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn clean_unit_completed_frames_keep_the_old_byte_layout() {
        // The degraded word is appended only when set: clean-path frames are
        // byte-identical to pre-degradation encoders, and a frame written by
        // one of those (no trailing word) decodes as not degraded.
        let clean = ServiceEvent::UnitCompleted {
            unit: 1,
            case: 2,
            value: 1.5,
            degraded: false,
        }
        .encode(9);
        let old_style = PayloadWriter::new()
            .u64(9)
            .u64(2)
            .u64(1)
            .u64(2)
            .f64_bits(1.5)
            .frame(kind::EVENT);
        assert_eq!(clean.payload, old_style.payload);
        assert_eq!(
            ServiceEvent::decode(&old_style).unwrap().1,
            ServiceEvent::UnitCompleted {
                unit: 1,
                case: 2,
                value: 1.5,
                degraded: false,
            }
        );
    }

    #[test]
    fn job_done_carries_errors() {
        let (job, outcome) = decode_job_done(&encode_job_done(9, Ok(()))).unwrap();
        assert_eq!(job, 9);
        assert!(outcome.is_ok());
        let (_, outcome) = decode_job_done(&encode_job_done(9, Err("solve failed"))).unwrap();
        assert_eq!(outcome.unwrap_err(), "solve failed");
    }

    #[test]
    fn reports_and_status_roundtrip() {
        let (fp, text) = decode_report(&encode_report(0xF00D, "header\nrecord\n")).unwrap();
        assert_eq!(fp, 0xF00D);
        assert_eq!(text, "header\nrecord\n");
        assert_eq!(decode_fetch(&encode_fetch(0xF00D)).unwrap(), 0xF00D);

        let status = QueueStatus {
            queued: 1,
            running: 2,
            done: 3,
            failed: 0,
            quarantined: 1,
        };
        let jobs = [
            JobSummary {
                id: 1,
                priority: Priority::High,
                state: "running",
            },
            JobSummary {
                id: 2,
                priority: Priority::Batch,
                state: "queued",
            },
            JobSummary {
                id: 3,
                priority: Priority::Normal,
                state: "quarantined",
            },
        ];
        let frame = encode_status_report(status, &jobs);
        // Old client: counters only, appended job table ignored.
        assert_eq!(decode_status_report(&frame).unwrap(), status);
        // New client: counters plus the table.
        let (decoded, table) = decode_status_detail(&frame).unwrap();
        assert_eq!(decoded, status);
        assert_eq!(table, jobs);
    }

    #[test]
    fn status_frames_without_job_table_decode_with_an_empty_one() {
        // A daemon that predates the job table sends the four counters only.
        let old_frame = PayloadWriter::new()
            .u64(4)
            .u64(1)
            .u64(0)
            .u64(0)
            .frame(kind::STATUS_REPORT);
        let (status, jobs) = decode_status_detail(&old_frame).unwrap();
        assert_eq!(status.queued, 4);
        assert_eq!(status.running, 1);
        assert_eq!(status.quarantined, 0);
        assert!(jobs.is_empty());
    }

    #[test]
    fn status_frames_without_quarantine_counter_decode_as_zero() {
        // A daemon that predates quarantine: counters plus a one-row job
        // table, no trailing quarantined word.
        let old_frame = PayloadWriter::new()
            .u64(1)
            .u64(0)
            .u64(0)
            .u64(0)
            .u64(1)
            .u64(7)
            .u64(1)
            .u64(0)
            .frame(kind::STATUS_REPORT);
        let (status, jobs) = decode_status_detail(&old_frame).unwrap();
        assert_eq!(status.quarantined, 0);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].state, "queued");
        assert_eq!(decode_status_report(&old_frame).unwrap(), status);
    }
}
