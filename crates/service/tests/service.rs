//! End-to-end service tests: submit → stream → fetch round trips, cached
//! re-submission, and the restart-resume guarantee (a daemon killed mid-job
//! comes back, resumes the partial checkpoint and publishes a report
//! bit-identical to an uninterrupted run).

use rough_core::RoughnessSpec;
use rough_em::material::Stackup;
use rough_em::units::{GigaHertz, Micrometers};
use rough_engine::{
    wire, CampaignReport, CancelToken, EngineError, FnObserver, Run, RunConfig, RunEvent, Scenario,
    SerialExecutor,
};
use rough_service::{Client, Daemon, DaemonConfig, JobQueue, JobState, ServiceEvent};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn scenario(name: &str, master_seed: u64) -> Scenario {
    Scenario::builder(Stackup::paper_baseline())
        .name(name)
        .roughness(RoughnessSpec::gaussian(
            Micrometers::new(1.0),
            Micrometers::new(1.0),
        ))
        .frequencies([GigaHertz::new(2.0).into()])
        .cells_per_side(6)
        .max_kl_modes(3)
        .monte_carlo(3)
        .master_seed(master_seed)
        .build()
        .expect("valid scenario")
}

fn serial_reference(scenario: &Scenario) -> CampaignReport {
    Run::new(scenario, RunConfig::new().executor(SerialExecutor))
        .expect("plan")
        .execute()
        .expect("reference campaign")
}

fn assert_reports_bit_identical(a: &CampaignReport, b: &CampaignReport, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: record count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.unit, rb.unit, "{label}: unit order");
        assert_eq!(
            ra.value.to_bits(),
            rb.value.to_bits(),
            "{label}: unit {} value",
            ra.unit
        );
    }
    for (ca, cb) in a.cases.iter().zip(&b.cases) {
        assert_eq!(ca.mean.to_bits(), cb.mean.to_bits(), "{label}: case mean");
        assert_eq!(
            ca.std_dev.to_bits(),
            cb.std_dev.to_bits(),
            "{label}: case std"
        );
    }
    assert_eq!(a.csv_rows(), b.csv_rows(), "{label}: CSV rows");
}

fn temp_state(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rough_service_tests")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start_daemon(state: &PathBuf) -> Daemon {
    Daemon::start(DaemonConfig::new("127.0.0.1:0", state).executor(Arc::new(SerialExecutor)))
        .expect("daemon starts")
}

#[test]
fn submit_watch_fetch_roundtrip_with_cached_resubmission() {
    let state = temp_state("roundtrip");
    let daemon = start_daemon(&state);
    let client = Client::new(daemon.addr());
    let scenario = scenario("service-roundtrip", 0x51);

    // Nothing cached before the first submission.
    let fingerprint = wire::scenario_fingerprint(&scenario);
    assert!(client.fetch_checkpoint(fingerprint).unwrap().is_none());

    // Submit and watch the full event stream to completion.
    let events: Arc<std::sync::Mutex<Vec<ServiceEvent>>> = Arc::default();
    let sink = Arc::clone(&events);
    let (submission, outcome) = client
        .submit_watch(&scenario, |event| {
            sink.lock().unwrap().push(event.clone());
        })
        .expect("watched submission");
    assert!(outcome.is_ok(), "job failed: {outcome:?}");
    assert!(!submission.cached);
    assert_eq!(submission.fingerprint, fingerprint);
    let events = events.lock().unwrap();
    let completed = events
        .iter()
        .filter(|e| matches!(e, ServiceEvent::UnitCompleted { .. }))
        .count();
    assert_eq!(completed, 3, "every unit streams a completion event");
    assert!(
        matches!(events.last(), Some(ServiceEvent::Finished { units: 3, .. })),
        "stream ends with Finished: {:?}",
        events.last()
    );

    // The fetched report is bit-identical to a local serial run.
    let fetched = client
        .fetch_report(fingerprint)
        .expect("fetch")
        .expect("report cached after completion");
    assert_reports_bit_identical(
        &serial_reference(&scenario),
        &fetched,
        "daemon-computed vs local serial",
    );

    // Resubmitting the same scenario is served from cache, instantly.
    let (resubmission, outcome) = client
        .submit_watch(&scenario, |_| {})
        .expect("cached resubmission");
    assert!(resubmission.cached);
    assert_eq!(resubmission.job, submission.job);
    assert!(outcome.is_ok());

    let status = client.status().expect("status");
    assert_eq!(status.done, 1);
    assert_eq!(status.failed, 0);

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// A daemon killed mid-campaign must come back, resume the partial
/// checkpoint via `Run::resume` and publish a report bit-identical to an
/// uninterrupted run. The "killed daemon" state is reconstructed exactly:
/// a journaled `running` job plus its partial engine checkpoint.
#[test]
fn daemon_restart_resumes_partial_jobs_bit_identically() {
    let state = temp_state("restart");
    let scenario = scenario("service-restart", 0x52);
    let scenario_wire = wire::encode_scenario(&scenario);
    let fingerprint = wire::scenario_fingerprint(&scenario);

    // Previous daemon life: job journaled as running…
    let checkpoint_path = {
        let mut queue = JobQueue::open(&state).expect("queue");
        let (job, cached) = queue.submit(&scenario_wire, fingerprint).expect("submit");
        assert!(!cached);
        queue.mark(job, JobState::Running).expect("mark running");
        queue.checkpoint_path(job)
    };
    // …with a partial checkpoint: interrupt a run after 1 of 3 units.
    let token = CancelToken::default();
    let observer_token = token.clone();
    let completed = AtomicUsize::new(0);
    let interrupted = Run::new(
        &scenario,
        RunConfig::new()
            .executor(SerialExecutor)
            .checkpoint(&checkpoint_path)
            .cancel_token(token)
            .observer(FnObserver(move |event: &RunEvent| {
                if matches!(event, RunEvent::UnitCompleted { .. })
                    && completed.fetch_add(1, Ordering::SeqCst) == 0
                {
                    observer_token.cancel();
                }
            })),
    )
    .expect("plan")
    .execute();
    assert!(matches!(
        interrupted,
        Err(EngineError::Interrupted {
            completed: 1,
            total: 3
        })
    ));

    // Restart: the daemon re-queues the job, resumes it and publishes.
    let daemon = start_daemon(&state);
    let client = Client::new(daemon.addr());
    // Duplicate submission attaches to the SAME restored job (fingerprint
    // dedupe), so watching it doubles as waiting for recovery to finish.
    let (submission, outcome) = client
        .submit_watch(&scenario, |_| {})
        .expect("watch restored job");
    assert!(outcome.is_ok(), "restored job failed: {outcome:?}");
    assert_eq!(submission.fingerprint, fingerprint);

    let fetched = client
        .fetch_report(fingerprint)
        .expect("fetch")
        .expect("report cached after recovery");
    assert_reports_bit_identical(
        &serial_reference(&scenario),
        &fetched,
        "resumed-across-restart vs uninterrupted serial",
    );

    let status = client.status().expect("status");
    assert_eq!(status.done, 1);
    assert_eq!(status.queued, 0);
    assert_eq!(status.failed, 0);

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// The published report cache is just compacted checkpoint text: it must
/// parse with the engine's tolerant reader and carry the exact fingerprint.
#[test]
fn published_reports_are_compacted_checkpoints() {
    let state = temp_state("published");
    let daemon = start_daemon(&state);
    let client = Client::new(daemon.addr());
    let scenario = scenario("service-published", 0x53);
    let fingerprint = wire::scenario_fingerprint(&scenario);

    let (_, outcome) = client.submit_watch(&scenario, |_| {}).expect("submission");
    assert!(outcome.is_ok());

    let text = client
        .fetch_checkpoint(fingerprint)
        .expect("fetch")
        .expect("cached");
    let parsed = rough_engine::checkpoint::parse(&text).expect("parses as a checkpoint");
    assert_eq!(parsed.header.fingerprint, fingerprint);
    assert_eq!(parsed.records.len(), 3);
    // Compacted: exactly header + one line per record.
    assert_eq!(text.lines().count(), 1 + parsed.records.len());

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}
