//! End-to-end service tests: submit → stream → fetch round trips, cached
//! re-submission, the restart-resume guarantee (a daemon killed mid-job
//! comes back, resumes the partial checkpoint and publishes a report
//! bit-identical to an uninterrupted run), and the concurrent-runner proofs:
//! two jobs observably running at once, concurrent reports bit-identical to
//! serial ones, every interrupted concurrent job resuming across a restart,
//! distributed-worker death during concurrent jobs, batch-priority progress
//! under sustained high-priority load, and wire compatibility with clients
//! that predate priorities.

use rough_core::RoughnessSpec;
use rough_em::material::Stackup;
use rough_em::units::{GigaHertz, Micrometers};
use rough_engine::{
    wire, CampaignReport, CancelToken, EngineError, FnObserver, Run, RunConfig, RunEvent, Scenario,
    SerialExecutor,
};
use rough_service::{Client, Daemon, DaemonConfig, JobQueue, JobState, Priority, ServiceEvent};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn scenario(name: &str, master_seed: u64) -> Scenario {
    Scenario::builder(Stackup::paper_baseline())
        .name(name)
        .roughness(RoughnessSpec::gaussian(
            Micrometers::new(1.0),
            Micrometers::new(1.0),
        ))
        .frequencies([GigaHertz::new(2.0).into()])
        .cells_per_side(6)
        .max_kl_modes(3)
        .monte_carlo(3)
        .master_seed(master_seed)
        .build()
        .expect("valid scenario")
}

fn serial_reference(scenario: &Scenario) -> CampaignReport {
    Run::new(scenario, RunConfig::new().executor(SerialExecutor))
        .expect("plan")
        .execute()
        .expect("reference campaign")
}

fn assert_reports_bit_identical(a: &CampaignReport, b: &CampaignReport, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: record count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.unit, rb.unit, "{label}: unit order");
        assert_eq!(
            ra.value.to_bits(),
            rb.value.to_bits(),
            "{label}: unit {} value",
            ra.unit
        );
    }
    for (ca, cb) in a.cases.iter().zip(&b.cases) {
        assert_eq!(ca.mean.to_bits(), cb.mean.to_bits(), "{label}: case mean");
        assert_eq!(
            ca.std_dev.to_bits(),
            cb.std_dev.to_bits(),
            "{label}: case std"
        );
    }
    assert_eq!(a.csv_rows(), b.csv_rows(), "{label}: CSV rows");
}

fn temp_state(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rough_service_tests")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start_daemon(state: &PathBuf) -> Daemon {
    Daemon::start(DaemonConfig::new("127.0.0.1:0", state).executor(Arc::new(SerialExecutor)))
        .expect("daemon starts")
}

#[test]
fn submit_watch_fetch_roundtrip_with_cached_resubmission() {
    let state = temp_state("roundtrip");
    let daemon = start_daemon(&state);
    let client = Client::new(daemon.addr());
    let scenario = scenario("service-roundtrip", 0x51);

    // Nothing cached before the first submission.
    let fingerprint = wire::scenario_fingerprint(&scenario);
    assert!(client.fetch_checkpoint(fingerprint).unwrap().is_none());

    // Submit and watch the full event stream to completion.
    let events: Arc<std::sync::Mutex<Vec<ServiceEvent>>> = Arc::default();
    let sink = Arc::clone(&events);
    let (submission, outcome) = client
        .submit_watch(&scenario, |event| {
            sink.lock().unwrap().push(event.clone());
        })
        .expect("watched submission");
    assert!(outcome.is_ok(), "job failed: {outcome:?}");
    assert!(!submission.cached);
    assert_eq!(submission.fingerprint, fingerprint);
    let events = events.lock().unwrap();
    let completed = events
        .iter()
        .filter(|e| matches!(e, ServiceEvent::UnitCompleted { .. }))
        .count();
    assert_eq!(completed, 3, "every unit streams a completion event");
    assert!(
        matches!(events.last(), Some(ServiceEvent::Finished { units: 3, .. })),
        "stream ends with Finished: {:?}",
        events.last()
    );

    // The fetched report is bit-identical to a local serial run.
    let fetched = client
        .fetch_report(fingerprint)
        .expect("fetch")
        .expect("report cached after completion");
    assert_reports_bit_identical(
        &serial_reference(&scenario),
        &fetched,
        "daemon-computed vs local serial",
    );

    // Resubmitting the same scenario is served from cache, instantly.
    let (resubmission, outcome) = client
        .submit_watch(&scenario, |_| {})
        .expect("cached resubmission");
    assert!(resubmission.cached);
    assert_eq!(resubmission.job, submission.job);
    assert!(outcome.is_ok());

    let status = client.status().expect("status");
    assert_eq!(status.done, 1);
    assert_eq!(status.failed, 0);

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// A daemon killed mid-campaign must come back, resume the partial
/// checkpoint via `Run::resume` and publish a report bit-identical to an
/// uninterrupted run. The "killed daemon" state is reconstructed exactly:
/// a journaled `running` job plus its partial engine checkpoint.
#[test]
fn daemon_restart_resumes_partial_jobs_bit_identically() {
    let state = temp_state("restart");
    let scenario = scenario("service-restart", 0x52);
    let scenario_wire = wire::encode_scenario(&scenario);
    let fingerprint = wire::scenario_fingerprint(&scenario);

    // Previous daemon life: job journaled as running…
    let checkpoint_path = {
        let mut queue = JobQueue::open(&state).expect("queue");
        let (job, cached) = queue
            .submit(&scenario_wire, fingerprint, Priority::Normal)
            .expect("submit");
        assert!(!cached);
        queue.mark(job, JobState::Running).expect("mark running");
        queue.checkpoint_path(job)
    };
    // …with a partial checkpoint: interrupt a run after 1 of 3 units.
    let token = CancelToken::default();
    let observer_token = token.clone();
    let completed = AtomicUsize::new(0);
    let interrupted = Run::new(
        &scenario,
        RunConfig::new()
            .executor(SerialExecutor)
            .checkpoint(&checkpoint_path)
            .cancel_token(token)
            .observer(FnObserver(move |event: &RunEvent| {
                if matches!(event, RunEvent::UnitCompleted { .. })
                    && completed.fetch_add(1, Ordering::SeqCst) == 0
                {
                    observer_token.cancel();
                }
            })),
    )
    .expect("plan")
    .execute();
    assert!(matches!(
        interrupted,
        Err(EngineError::Interrupted {
            completed: 1,
            total: 3
        })
    ));

    // Restart: the daemon re-queues the job, resumes it and publishes.
    let daemon = start_daemon(&state);
    let client = Client::new(daemon.addr());
    // Duplicate submission attaches to the SAME restored job (fingerprint
    // dedupe), so watching it doubles as waiting for recovery to finish.
    let (submission, outcome) = client
        .submit_watch(&scenario, |_| {})
        .expect("watch restored job");
    assert!(outcome.is_ok(), "restored job failed: {outcome:?}");
    assert_eq!(submission.fingerprint, fingerprint);

    let fetched = client
        .fetch_report(fingerprint)
        .expect("fetch")
        .expect("report cached after recovery");
    assert_reports_bit_identical(
        &serial_reference(&scenario),
        &fetched,
        "resumed-across-restart vs uninterrupted serial",
    );

    let status = client.status().expect("status");
    assert_eq!(status.done, 1);
    assert_eq!(status.queued, 0);
    assert_eq!(status.failed, 0);

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// The published report cache is just compacted checkpoint text: it must
/// parse with the engine's tolerant reader and carry the exact fingerprint.
#[test]
fn published_reports_are_compacted_checkpoints() {
    let state = temp_state("published");
    let daemon = start_daemon(&state);
    let client = Client::new(daemon.addr());
    let scenario = scenario("service-published", 0x53);
    let fingerprint = wire::scenario_fingerprint(&scenario);

    let (_, outcome) = client.submit_watch(&scenario, |_| {}).expect("submission");
    assert!(outcome.is_ok());

    let text = client
        .fetch_checkpoint(fingerprint)
        .expect("fetch")
        .expect("cached");
    let parsed = rough_engine::checkpoint::parse(&text).expect("parses as a checkpoint");
    assert_eq!(parsed.header.fingerprint, fingerprint);
    assert_eq!(parsed.records.len(), 3);
    // Compacted: exactly header + one line per record.
    assert_eq!(text.lines().count(), 1 + parsed.records.len());

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// A scheduler-observable executor: records the class sequence each job was
/// scheduled in and fabricates records with a class-dependent artificial
/// solve time (low-frequency units are the *slow* ones — the opposite of the
/// static `cells⁴·frequency` model, so measured reordering is unmistakable).
#[derive(Debug)]
struct TimedFakeExecutor {
    orders: Arc<std::sync::Mutex<Vec<Vec<String>>>>,
}

impl rough_engine::UnitExecutor for TimedFakeExecutor {
    fn name(&self) -> &'static str {
        "timed-fake"
    }

    fn parallelism(&self) -> usize {
        1
    }

    fn execute(
        &self,
        plan: &rough_engine::Plan,
        order: &[usize],
        _cache: &rough_engine::KernelCache,
        sink: &rough_engine::UnitSink<'_>,
    ) -> Result<(), EngineError> {
        let mut classes = Vec::new();
        for &unit_id in order {
            let unit = &plan.units()[unit_id];
            let class = rough_engine::unit_class(plan, unit);
            sink.unit_started(unit);
            let millis = if class.ends_with("@1GHz") { 60 } else { 5 };
            std::thread::sleep(std::time::Duration::from_millis(millis));
            sink.complete(rough_engine::UnitRecord {
                unit: unit_id,
                case_index: unit.case_index,
                value: 1.0,
                relative_residual: 1e-12,
                degraded: false,
            })?;
            classes.push(class);
        }
        self.orders.lock().unwrap().push(classes);
        Ok(())
    }
}

/// The daemon's calibration loop: job 1 is scheduled by the static model
/// (high frequency first), its measured unit times land in the state dir's
/// `cost_table.json`, and job 2 is reordered by measured cost (the slow
/// low-frequency class first).
#[test]
fn daemon_feeds_cost_table_and_second_job_reorders_by_measured_cost() {
    let state = temp_state("calibration");
    let orders: Arc<std::sync::Mutex<Vec<Vec<String>>>> = Arc::default();
    let daemon = Daemon::start(DaemonConfig::new("127.0.0.1:0", &state).executor(Arc::new(
        TimedFakeExecutor {
            orders: Arc::clone(&orders),
        },
    )))
    .expect("daemon starts");
    let client = Client::new(daemon.addr());

    let two_frequency = |seed: u64| {
        Scenario::builder(Stackup::paper_baseline())
            .name("calibration")
            .roughness(RoughnessSpec::gaussian(
                Micrometers::new(1.0),
                Micrometers::new(1.0),
            ))
            .frequencies([GigaHertz::new(1.0).into(), GigaHertz::new(9.0).into()])
            .cells_per_side(5)
            .max_kl_modes(3)
            .monte_carlo(2)
            .master_seed(seed)
            .build()
            .expect("valid scenario")
    };

    let (_, outcome) = client
        .submit_watch(&two_frequency(0x61), |_| {})
        .expect("job 1");
    assert!(outcome.is_ok());

    // Job 1 ran before any measurements existed: the static model orders by
    // frequency, 9 GHz first.
    {
        let orders = orders.lock().unwrap();
        assert_eq!(orders.len(), 1);
        assert!(
            orders[0].first().unwrap().ends_with("@9GHz"),
            "uncalibrated job starts with the statically-expensive class: {:?}",
            orders[0]
        );
    }

    // Its measured unit times were absorbed into the persisted table.
    let table_path = state.join("cost_table.json");
    let table = rough_engine::CostTable::load(&table_path).expect("cost table persisted");
    assert_eq!(table.len(), 2, "both classes measured");
    let slow = table.lookup("c5@1GHz").expect("slow class measured");
    let fast = table.lookup("c5@9GHz").expect("fast class measured");
    assert!(
        slow > fast,
        "measured costs invert the static model: {slow} vs {fast}"
    );

    // Job 2 (different seed, so no cache hit) schedules by measured cost:
    // the genuinely slow 1 GHz class now runs first.
    let (submission, outcome) = client
        .submit_watch(&two_frequency(0x62), |_| {})
        .expect("job 2");
    assert!(outcome.is_ok());
    assert!(!submission.cached);
    {
        let orders = orders.lock().unwrap();
        assert_eq!(orders.len(), 2);
        assert!(
            orders[1].first().unwrap().ends_with("@1GHz"),
            "calibrated job starts with the measured-slow class: {:?}",
            orders[1]
        );
        // All slow-class units precede all fast-class units.
        let first_fast = orders[1]
            .iter()
            .position(|c| c.ends_with("@9GHz"))
            .expect("fast class present");
        assert!(
            orders[1][first_fast..].iter().all(|c| c.ends_with("@9GHz")),
            "longest-first order is total: {:?}",
            orders[1]
        );
    }

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn daemon_sweep_rounds_dedupe_and_export_bit_identically() {
    use rough_engine::SweepScenario;
    use rough_service::DaemonEvaluator;
    use rough_sweep::{zf_csv, FrequencySweep};

    let state = temp_state("sweep");
    let daemon = start_daemon(&state);
    let client = Client::new(daemon.addr());

    // A 3-point sweep (budget == coarse scan): one daemon round, no
    // refinement — small enough for CI, wide enough to hit every layer.
    let sweep = || {
        SweepScenario::builder(
            scenario("sweep-roundtrip", 77),
            GigaHertz::new(2.0).into(),
            GigaHertz::new(10.0).into(),
        )
        .coarse_points(3)
        .max_points(3)
        .tolerance(1e-3)
        .build()
        .expect("valid sweep")
    };
    let stack = Stackup::paper_baseline();

    let events = Arc::new(AtomicUsize::new(0));
    let events_clone = Arc::clone(&events);
    let mut evaluator = DaemonEvaluator::new(&client, move |_event| {
        events_clone.fetch_add(1, Ordering::Relaxed);
    });
    let first = FrequencySweep::new(sweep())
        .run(&mut evaluator)
        .expect("first sweep");
    assert_eq!(first.points.len(), 3);
    assert_eq!(evaluator.rounds(), 1);
    assert_eq!(evaluator.cached_rounds(), 0);
    assert!(
        events.load(Ordering::Relaxed) > 0,
        "daemon streamed no run events"
    );

    // Re-running the identical sweep dedupes every round against the
    // daemon's content-addressed report cache and reproduces the exported
    // table byte for byte.
    let mut warm = DaemonEvaluator::new(&client, |_event: &ServiceEvent| {});
    let second = FrequencySweep::new(sweep())
        .run(&mut warm)
        .expect("second sweep");
    assert_eq!(warm.cached_rounds(), 1, "round was not served from cache");
    assert_eq!(zf_csv(&first, &stack), zf_csv(&second, &stack));
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// A serial executor whose `execute` parks until the test releases it,
/// counting how many runs are in flight — the window in which concurrent
/// execution is *observable* from outside via STATUS.
#[derive(Debug, Default)]
struct Gate {
    started: std::sync::Mutex<usize>,
    started_cv: std::sync::Condvar,
    release: std::sync::Mutex<bool>,
    release_cv: std::sync::Condvar,
}

impl Gate {
    fn wait_started(&self, want: usize) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let mut started = self.started.lock().unwrap();
        while *started < want {
            assert!(
                std::time::Instant::now() < deadline,
                "only {} of {want} runs started",
                *started
            );
            let (guard, _) = self
                .started_cv
                .wait_timeout(started, std::time::Duration::from_millis(100))
                .unwrap();
            started = guard;
        }
    }

    fn release_all(&self) {
        *self.release.lock().unwrap() = true;
        self.release_cv.notify_all();
    }
}

#[derive(Debug)]
struct GatedSerialExecutor {
    gate: Arc<Gate>,
}

impl rough_engine::UnitExecutor for GatedSerialExecutor {
    fn name(&self) -> &'static str {
        "gated-serial"
    }

    fn parallelism(&self) -> usize {
        1
    }

    fn execute(
        &self,
        plan: &rough_engine::Plan,
        order: &[usize],
        cache: &rough_engine::KernelCache,
        sink: &rough_engine::UnitSink<'_>,
    ) -> Result<(), EngineError> {
        {
            let mut started = self.gate.started.lock().unwrap();
            *started += 1;
            self.gate.started_cv.notify_all();
        }
        {
            let mut released = self.gate.release.lock().unwrap();
            while !*released {
                released = self.gate.release_cv.wait(released).unwrap();
            }
        }
        SerialExecutor.execute(plan, order, cache, sink)
    }
}

fn wait_status(client: &Client, label: &str, done: u64) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let status = client.status().expect("status");
        if status.done >= done {
            return;
        }
        assert_eq!(status.failed, 0, "{label}: a job failed");
        assert!(
            std::time::Instant::now() < deadline,
            "{label}: stuck at {status:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

/// The tentpole proof: with `max_concurrent_jobs = 2`, two of three
/// mixed-priority jobs are *observably* running at the same time (STATUS
/// reports two `running` jobs while the third queues), and every report is
/// bit-identical to a local serial run of the same scenario.
#[test]
fn concurrent_runners_overlap_and_reports_stay_bit_identical() {
    let state = temp_state("concurrent");
    let gate: Arc<Gate> = Arc::default();
    let daemon = Daemon::start(
        DaemonConfig::new("127.0.0.1:0", &state)
            .executor(Arc::new(GatedSerialExecutor {
                gate: Arc::clone(&gate),
            }))
            .max_concurrent_jobs(2),
    )
    .expect("daemon starts");
    let client = Client::new(daemon.addr());

    let scenarios = [
        (scenario("concurrent-high", 0x71), Priority::High),
        (scenario("concurrent-normal", 0x72), Priority::Normal),
        (scenario("concurrent-batch", 0x73), Priority::Batch),
    ];
    let mut submitted = Vec::new();
    for (scenario, priority) in &scenarios {
        let submission = client
            .submit_priority(scenario, *priority)
            .expect("submission accepted");
        assert!(!submission.cached);
        submitted.push(submission);
    }

    // Two runners must pick up two different jobs and sit in execute()
    // simultaneously — the gate holds them there so STATUS can observe it.
    gate.wait_started(2);
    let (status, jobs) = client.status_detail().expect("status detail");
    assert_eq!(status.running, 2, "two jobs run concurrently: {status:?}");
    assert_eq!(status.queued, 1);
    let running: Vec<u64> = jobs
        .iter()
        .filter(|j| j.state == "running")
        .map(|j| j.id)
        .collect();
    assert_eq!(running.len(), 2);
    // The per-job table reports each submission's priority class.
    for (submission, (_, priority)) in submitted.iter().zip(&scenarios) {
        let row = jobs
            .iter()
            .find(|j| j.id == submission.job)
            .expect("job listed in STATUS");
        assert_eq!(row.priority, *priority);
    }
    // The high-priority job was dispatched (it is not the one still queued).
    assert!(
        running.contains(&submitted[0].job),
        "high-priority job not among the running pair: {running:?}"
    );

    gate.release_all();
    wait_status(&client, "concurrent", 3);

    // Concurrency must not perturb a single bit of any result.
    for (submission, (scenario, _)) in submitted.iter().zip(&scenarios) {
        let fetched = client
            .fetch_report(submission.fingerprint)
            .expect("fetch")
            .expect("report cached");
        assert_reports_bit_identical(
            &serial_reference(scenario),
            &fetched,
            "concurrent daemon run vs local serial",
        );
    }

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// Restart-resume under concurrency: a daemon dies with TWO jobs mid-flight
/// (both journaled `running`, both with partial checkpoints). The restarted
/// daemon re-queues and resumes BOTH, and each published report is
/// bit-identical to an uninterrupted serial run.
#[test]
fn restart_resumes_all_concurrently_interrupted_jobs_bit_identically() {
    let state = temp_state("restart-concurrent");
    let scenarios = [
        scenario("restart-concurrent-a", 0x81),
        scenario("restart-concurrent-b", 0x82),
    ];

    // Previous daemon life: both jobs journaled running, each with a partial
    // checkpoint interrupted after 1 of its 3 units.
    for (i, scenario) in scenarios.iter().enumerate() {
        let scenario_wire = wire::encode_scenario(scenario);
        let fingerprint = wire::scenario_fingerprint(scenario);
        let checkpoint_path = {
            let mut queue = JobQueue::open(&state).expect("queue");
            let (job, cached) = queue
                .submit(&scenario_wire, fingerprint, Priority::Normal)
                .expect("submit");
            assert!(!cached);
            queue.mark(job, JobState::Running).expect("mark running");
            queue.checkpoint_path(job)
        };
        let token = CancelToken::default();
        let observer_token = token.clone();
        let completed = AtomicUsize::new(0);
        let interrupted = Run::new(
            scenario,
            RunConfig::new()
                .executor(SerialExecutor)
                .checkpoint(&checkpoint_path)
                .cancel_token(token)
                .observer(FnObserver(move |event: &RunEvent| {
                    if matches!(event, RunEvent::UnitCompleted { .. })
                        && completed.fetch_add(1, Ordering::SeqCst) == 0
                    {
                        observer_token.cancel();
                    }
                })),
        )
        .expect("plan")
        .execute();
        assert!(
            matches!(
                interrupted,
                Err(EngineError::Interrupted {
                    completed: 1,
                    total: 3
                })
            ),
            "job {i} interruption went wrong: {interrupted:?}"
        );
    }

    // Restart with two runners: both restored jobs resume concurrently.
    let daemon = Daemon::start(
        DaemonConfig::new("127.0.0.1:0", &state)
            .executor(Arc::new(SerialExecutor))
            .max_concurrent_jobs(2),
    )
    .expect("daemon restarts");
    let client = Client::new(daemon.addr());
    wait_status(&client, "restart-concurrent", 2);

    for scenario in &scenarios {
        let fingerprint = wire::scenario_fingerprint(scenario);
        let fetched = client
            .fetch_report(fingerprint)
            .expect("fetch")
            .expect("report cached after recovery");
        assert_reports_bit_identical(
            &serial_reference(scenario),
            &fetched,
            "resumed-concurrently-across-restart vs uninterrupted serial",
        );
    }
    let status = client.status().expect("status");
    assert_eq!(status.done, 2);
    assert_eq!(status.queued, 0);
    assert_eq!(status.failed, 0);

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// Sustained high-priority load: a batch job is submitted, then a stream of
/// high-priority jobs is pushed through the daemon one after another. The
/// batch job must reach `done` — the queue's aging promotes it past fresh
/// high-priority arrivals after at most `AGE_STEP × class` dispatches.
#[test]
fn batch_jobs_complete_under_sustained_high_priority_load() {
    let state = temp_state("starvation");
    let daemon = start_daemon(&state);
    let client = Client::new(daemon.addr());

    let batch = scenario("starvation-batch", 0x91);
    let submission = client
        .submit_priority(&batch, Priority::Batch)
        .expect("batch accepted");

    // 2 × the aging bound of the batch class: more than enough dispatches
    // for aging to promote the batch job whatever the interleaving.
    let rounds = 2 * rough_service::queue::AGE_STEP * u64::from(Priority::Batch.class()) + 2;
    for round in 0..rounds {
        let high = scenario("starvation-high", 0xA0 + round);
        let (_, outcome) = client
            .submit_watch_priority(&high, Priority::High, |_| {})
            .expect("high-priority job");
        assert!(outcome.is_ok(), "high job {round} failed: {outcome:?}");
    }

    let (_, jobs) = client.status_detail().expect("status detail");
    let row = jobs
        .iter()
        .find(|j| j.id == submission.job)
        .expect("batch job listed");
    assert_eq!(
        row.state, "done",
        "batch job starved under sustained high-priority load"
    );
    let fetched = client
        .fetch_report(submission.fingerprint)
        .expect("fetch")
        .expect("batch report cached");
    assert_reports_bit_identical(
        &serial_reference(&batch),
        &fetched,
        "batch-under-load vs local serial",
    );

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// A client that predates priorities speaks the old SUBMIT layout (scenario +
/// watch word, no priority) and reads only the four STATUS counters. Both
/// conversations must still work against the new daemon, with the submission
/// defaulting to `normal` priority.
#[test]
fn old_wire_clients_interoperate_with_the_new_daemon() {
    use rough_engine::frame::{read_frame, write_frame, PayloadWriter};
    use rough_service::protocol;

    let state = temp_state("oldwire");
    let daemon = start_daemon(&state);
    let scenario = scenario("old-wire", 0xB1);
    let scenario_wire = wire::encode_scenario(&scenario);

    // Old-layout SUBMIT, watch = 1: exactly the bytes an old client sends.
    let mut stream = std::net::TcpStream::connect(daemon.addr()).expect("connect");
    let submit = PayloadWriter::new()
        .str(&scenario_wire)
        .u64(1)
        .frame(protocol::kind::SUBMIT);
    write_frame(&mut stream, &submit).expect("submit frame");
    let reply = read_frame(&mut stream).expect("accepted frame");
    assert_eq!(reply.kind, protocol::kind::ACCEPTED);
    let mut reader = reply.reader();
    let job = reader.u64().expect("job id");
    // Stream events until the terminal JOB_DONE, like an old watcher would.
    loop {
        let frame = read_frame(&mut stream).expect("event stream");
        if frame.kind == protocol::kind::JOB_DONE {
            let (done_job, outcome) = protocol::decode_job_done(&frame).expect("job done");
            assert_eq!(done_job, job);
            assert!(outcome.is_ok(), "old-wire job failed: {outcome:?}");
            break;
        }
        assert_eq!(frame.kind, protocol::kind::EVENT);
    }

    // The priority-less submission landed as `normal`.
    let client = Client::new(daemon.addr());
    let (_, jobs) = client.status_detail().expect("status detail");
    let row = jobs.iter().find(|j| j.id == job).expect("job listed");
    assert_eq!(row.priority, Priority::Normal);
    assert_eq!(row.state, "done");

    // Old-layout STATUS read: counters decode, the job table is ignored.
    let mut stream = std::net::TcpStream::connect(daemon.addr()).expect("connect");
    write_frame(
        &mut stream,
        &rough_engine::frame::Frame::empty(protocol::kind::STATUS),
    )
    .expect("status frame");
    let reply = read_frame(&mut stream).expect("status report");
    let counters = protocol::decode_status_report(&reply).expect("old-layout decode");
    assert_eq!(counters.done, 1);
    assert_eq!(counters.failed, 0);

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// Worker-mode hook for the distributed fault-injection test below: the
/// socket executors re-launch this test binary with
/// `service_worker_entry --exact` as persistent worker processes.
#[test]
fn service_worker_entry() {
    rough_engine::subprocess::maybe_serve_worker();
}

fn socket_executor(workers: usize) -> rough_engine::SocketExecutor {
    rough_engine::SocketExecutor::new(workers).with_args([
        "service_worker_entry",
        "--exact",
        "--nocapture",
    ])
}

/// Fault injection during concurrency: two jobs run at once, each on its own
/// two-worker socket executor; the moment the first unit result lands we kill
/// one worker process under EACH executor. Both jobs must finish on the
/// surviving workers with reports bit-identical to serial runs, and at least
/// one event stream must report the loss.
#[test]
fn worker_death_during_concurrent_jobs_keeps_both_reports_bit_identical() {
    use std::sync::atomic::AtomicBool;

    let state = temp_state("worker-death-concurrent");
    let executor_a = Arc::new(socket_executor(2));
    let executor_b = Arc::new(socket_executor(2));
    let daemon = Daemon::start(DaemonConfig::new("127.0.0.1:0", &state).executors(vec![
        executor_a.clone() as Arc<dyn rough_engine::UnitExecutor>,
        executor_b.clone() as Arc<dyn rough_engine::UnitExecutor>,
    ]))
    .expect("daemon starts");
    let addr = daemon.addr().to_owned();

    let killed = Arc::new(AtomicBool::new(false));
    let worker_lost_seen = Arc::new(AtomicBool::new(false));
    let scenarios = [
        scenario("worker-death-a", 0xC1),
        scenario("worker-death-b", 0xC2),
    ];
    let mut watchers = Vec::new();
    for scenario in scenarios.clone() {
        let addr = addr.clone();
        let killed = Arc::clone(&killed);
        let lost = Arc::clone(&worker_lost_seen);
        let killer_a = Arc::clone(&executor_a);
        let killer_b = Arc::clone(&executor_b);
        watchers.push(std::thread::spawn(move || {
            let client = Client::new(&addr);
            client.submit_watch(&scenario, |event: &ServiceEvent| match event {
                // First result from either job: kill one worker process
                // under each executor, mid-flight for both runs.
                ServiceEvent::UnitCompleted { .. } if !killed.swap(true, Ordering::SeqCst) => {
                    assert!(killer_a.kill_one_worker(), "executor A has a live worker");
                    assert!(killer_b.kill_one_worker(), "executor B has a live worker");
                }
                ServiceEvent::WorkerLost { .. } => {
                    lost.store(true, Ordering::SeqCst);
                }
                _ => {}
            })
        }));
    }
    for watcher in watchers {
        let (_, outcome) = watcher
            .join()
            .expect("watcher thread")
            .expect("watch stream");
        assert!(outcome.is_ok(), "job died with the worker: {outcome:?}");
    }
    assert!(
        worker_lost_seen.load(Ordering::SeqCst),
        "no stream reported the killed workers"
    );

    let client = Client::new(&addr);
    for scenario in &scenarios {
        let fetched = client
            .fetch_report(wire::scenario_fingerprint(scenario))
            .expect("fetch")
            .expect("report cached");
        assert_reports_bit_identical(
            &serial_reference(scenario),
            &fetched,
            "concurrent-with-worker-death vs local serial",
        );
    }

    client.shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&state).ok();
}

/// Numeric Z(f)-table comparison: structure exact, every value within 1e-6
/// relative (1e-9 absolute) — the bits columns are decoded and compared as
/// numbers so last-ulp libm differences across toolchains don't flake.
fn assert_zf_rows_match(want: &str, got: &str) {
    let want_lines: Vec<&str> = want.lines().collect();
    let got_lines: Vec<&str> = got.lines().collect();
    assert_eq!(
        want_lines.len(),
        got_lines.len(),
        "row count changed (golden {} vs actual {})",
        want_lines.len(),
        got_lines.len()
    );
    assert_eq!(want_lines[0], got_lines[0], "header changed");
    for (row, (w, g)) in want_lines.iter().zip(&got_lines).enumerate().skip(1) {
        let wf: Vec<&str> = w.split(',').collect();
        let gf: Vec<&str> = g.split(',').collect();
        assert_eq!(wf.len(), gf.len(), "row {row}: column count changed");
        for (col, (wc, gc)) in wf.iter().zip(&gf).enumerate() {
            let decode = |t: &str| -> f64 {
                if col >= 5 {
                    f64::from_bits(u64::from_str_radix(t, 16).expect("bits column"))
                } else {
                    t.parse().expect("numeric column")
                }
            };
            let (wv, gv) = (decode(wc), decode(gc));
            let tol = 1e-6 * wv.abs().max(1e-9);
            assert!(
                (wv - gv).abs() <= tol,
                "row {row} col {col}: golden {wv} vs actual {gv}"
            );
        }
    }
}

/// The `fig5-band-reduced` preset's exported `Z(f)` table is pinned against
/// a golden snapshot — the same file the CI service-smoke job diffs the
/// daemon-computed sweep against. Regenerate with `REGEN_GOLDEN=1`.
#[test]
fn sweep_preset_zf_table_matches_golden() {
    let sweep = rough_service::presets::sweep_by_name("fig5-band-reduced").unwrap();
    let stack = *sweep.template().stack();
    let mut evaluator = rough_sweep::EngineEvaluator::new();
    let outcome = rough_sweep::FrequencySweep::new(sweep)
        .run(&mut evaluator)
        .unwrap();
    let csv = rough_sweep::zf_csv(&outcome, &stack);
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig5_band_zf.csv");
    if std::env::var("REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &csv).unwrap();
        eprintln!("regenerated {}", golden.display());
        return;
    }
    let want = std::fs::read_to_string(&golden)
        .expect("golden fig5_band_zf.csv missing; regenerate with REGEN_GOLDEN=1");
    assert_zf_rows_match(&want, &csv);
}
