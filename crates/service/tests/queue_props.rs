//! Property tests of the job queue's priority/aging dispatch and journal
//! durability: random submit/dispatch/mark interleavings across priority
//! classes, checked against the scheduler's two provable invariants, plus
//! journal roundtrip and torn-tail tolerance with priority records in play.
//!
//! The dispatch invariants (see `queue::take_next`):
//!
//! 1. **Class FIFO, never preempted from behind**: a job submitted later at
//!    the same or a lazier class never dispatches before an earlier job —
//!    their score gap is constant while both wait, and ties break on the
//!    smaller id.
//! 2. **Bounded starvation**: once a waiting job has been passed over
//!    `AGE_STEP × class` times, its score has caught up with a brand-new
//!    high-priority submission — so any job submitted *after* that point
//!    dispatches after it, whatever its class.

use proptest::prelude::*;
use rough_service::{JobQueue, JobState, Priority};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const AGE_STEP: u64 = rough_service::queue::AGE_STEP;

fn temp_root(name: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir()
        .join("rough_service_queue_props")
        .join(format!(
            "{name}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn priority_from(class: u64) -> Priority {
    Priority::from_class((class % 3) as u8).unwrap()
}

/// Bookkeeping mirror of one submitted job, tracking what the scheduler's
/// invariants promise it.
struct ModelJob {
    id: u64,
    class: u64,
    /// Times this job has been passed over while queued.
    age: u64,
    queued: bool,
    /// Queued jobs that had already aged past their starvation bound when
    /// this job was submitted: they MUST dispatch before it (invariant 2).
    must_follow: Vec<u64>,
}

proptest! {
    // Random interleavings of submissions (across all three classes) and
    // dispatches never violate the class-FIFO or bounded-starvation
    // invariants, and every job is eventually dispatched.
    #[test]
    fn dispatch_respects_fifo_and_the_starvation_bound(
        ops in proptest::collection::vec(0u64..6, 1..60),
    ) {
        let root = temp_root("dispatch");
        let mut queue = JobQueue::open(&root).unwrap();
        let mut model: Vec<ModelJob> = Vec::new();
        let mut next_fingerprint = 1u64;

        // op 0..3: submit at that class; 3..6: dispatch one job.
        let mut step = |queue: &mut JobQueue, model: &mut Vec<ModelJob>, op: u64|
            -> Result<(), proptest::test_runner::TestCaseError>
        {
            if op < 3 {
                let priority = priority_from(op);
                let wire = format!("scenario-{next_fingerprint}");
                let (id, cached) = queue.submit(&wire, next_fingerprint, priority).unwrap();
                next_fingerprint += 1;
                prop_assert!(!cached);
                let must_follow = model
                    .iter()
                    .filter(|j| j.queued && j.age >= AGE_STEP * j.class)
                    .map(|j| j.id)
                    .collect();
                model.push(ModelJob { id, class: op, age: 0, queued: true, must_follow });
            } else if let Some(id) = queue.take_next() {
                queue.mark(id, JobState::Done).unwrap();
                let dispatched_class = model.iter().find(|j| j.id == id).unwrap().class;
                let still_queued: Vec<u64> = model
                    .iter()
                    .filter(|j| j.queued && j.id != id)
                    .map(|j| j.id)
                    .collect();
                // Invariant 1: nothing older at an equal-or-more-urgent
                // class is still waiting.
                for j in model.iter().filter(|j| still_queued.contains(&j.id)) {
                    prop_assert!(
                        j.id > id || j.class > dispatched_class,
                        "job {id} (class {dispatched_class}) preempted older job {} (class {})",
                        j.id, j.class
                    );
                }
                // Invariant 2: every job this one was obliged to follow has
                // already dispatched.
                let dispatched = model.iter().find(|j| j.id == id).unwrap();
                for &elder in &dispatched.must_follow {
                    prop_assert!(
                        !still_queued.contains(&elder),
                        "job {id} starved aged-out job {elder} past the bound"
                    );
                }
                for j in model.iter_mut() {
                    if j.id == id {
                        j.queued = false;
                    } else if j.queued {
                        j.age += 1;
                    }
                }
            }
            Ok(())
        };

        for &op in &ops {
            step(&mut queue, &mut model, op)?;
        }
        // Drain: everything submitted must come out (liveness).
        while queue.next_queued().is_some() {
            step(&mut queue, &mut model, 3)?;
        }
        prop_assert!(model.iter().all(|j| !j.queued));
        std::fs::remove_dir_all(&root).ok();
    }

    // Any mix of priorities and lifecycle transitions survives a journal
    // reopen: ids, priorities and terminal states are preserved, and every
    // `running` job comes back `queued` (the restart-resume contract).
    #[test]
    fn journal_reopen_preserves_priorities_and_states(
        classes in proptest::collection::vec(0u64..3, 1..12),
        marks in proptest::collection::vec(0u64..4, 1..12),
    ) {
        let root = temp_root("reopen");
        let mut expected: Vec<(u64, Priority, JobState)> = Vec::new();
        {
            let mut queue = JobQueue::open(&root).unwrap();
            for (i, &class) in classes.iter().enumerate() {
                let priority = priority_from(class);
                let fingerprint = 1 + i as u64;
                let (id, _) = queue
                    .submit(&format!("scenario-{i}"), fingerprint, priority)
                    .unwrap();
                let state = match marks.get(i).copied().unwrap_or(0) {
                    1 => JobState::Running,
                    2 => JobState::Done,
                    3 => JobState::Failed(format!("boom {i}")),
                    _ => JobState::Queued,
                };
                if state != JobState::Queued {
                    queue.mark(id, state.clone()).unwrap();
                }
                // Replay re-queues interrupted (running) jobs.
                let after_reopen = if state == JobState::Running {
                    JobState::Queued
                } else {
                    state
                };
                expected.push((id, priority, after_reopen));
            }
        }
        let queue = JobQueue::open(&root).unwrap();
        for (id, priority, state) in &expected {
            let job = queue.job(*id).unwrap();
            prop_assert_eq!(job.priority, *priority);
            prop_assert_eq!(&job.state, state);
        }
        std::fs::remove_dir_all(&root).ok();
    }

    // A torn tail — any prefix of a trailing job/priority/state line, cut
    // mid-byte by a crash — never breaks replay and never corrupts the jobs
    // that were durably journaled before it.
    #[test]
    fn torn_tails_with_priority_lines_are_tolerated(
        classes in proptest::collection::vec(0u64..3, 1..8),
        cut in 1usize..120,
    ) {
        let root = temp_root("torn");
        {
            let mut queue = JobQueue::open(&root).unwrap();
            for (i, &class) in classes.iter().enumerate() {
                queue
                    .submit(&format!("scenario-{i}"), 1 + i as u64, priority_from(class))
                    .unwrap();
            }
        }
        let journal = root.join("queue.jsonl");
        let mut text = std::fs::read_to_string(&journal).unwrap();
        // Torn tail: the prefix of a record a crash cut short — here a job
        // line with a priority field, and a bare priority-upgrade line.
        let torn = "{\"kind\":\"job\",\"id\":99,\"fingerprint\":\"00000000000000ff\",\
                    \"scenario\":\"torn\",\"priority\":\"high\"}\n\
                    {\"kind\":\"priority\",\"id\":99,\"priority\":\"batch\"}";
        text.push_str(&torn[..cut.min(torn.len() - 1)]);
        std::fs::write(&journal, text).unwrap();

        let queue = JobQueue::open(&root).unwrap();
        let intact = (1..=classes.len() as u64)
            .filter(|id| {
                queue.job(*id).is_some_and(|j| {
                    j.state == JobState::Queued
                        && j.priority == priority_from(classes[(*id - 1) as usize])
                })
            })
            .count();
        prop_assert!(
            intact == classes.len(),
            "durable submissions lost to a torn tail: {} of {}",
            intact,
            classes.len()
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
