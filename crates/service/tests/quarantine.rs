//! Quarantine integration test (own file: it arms a process-global fault
//! plan via [`rough_faults::ScopedPlan`] and sets the daemon's retry budget
//! env, so it must not share a test binary with anything that races those).
//!
//! Proves the poison-job ladder end to end: with `ROUGHSIMD_JOB_RETRIES=2`
//! and an injected `job.run.fail:3`, a job fails its first run plus both
//! retries and lands in `Quarantined` — surfaced through STATUS and the
//! watch stream, never blocking other queued jobs, resubmittable as a fresh
//! job, and journaled across a daemon restart.

use rough_core::RoughnessSpec;
use rough_em::material::Stackup;
use rough_em::units::{GigaHertz, Micrometers};
use rough_engine::{wire, Scenario, SerialExecutor};
use rough_service::{Client, Daemon, DaemonConfig};
use std::sync::Arc;

fn scenario(name: &str, master_seed: u64) -> Scenario {
    Scenario::builder(Stackup::paper_baseline())
        .name(name)
        .roughness(RoughnessSpec::gaussian(
            Micrometers::new(1.0),
            Micrometers::new(1.0),
        ))
        .frequencies([GigaHertz::new(2.0).into()])
        .cells_per_side(6)
        .max_kl_modes(3)
        .monte_carlo(3)
        .master_seed(master_seed)
        .build()
        .expect("valid scenario")
}

#[test]
fn quarantined_jobs_survive_restart_and_never_stall_the_queue() {
    let state = std::env::temp_dir()
        .join("rough_service_tests")
        .join(format!("quarantine-{}", std::process::id()));
    std::fs::remove_dir_all(&state).ok();
    std::env::set_var(rough_service::JOB_RETRIES_ENV, "2");
    // First run + 2 retries all fail; the 4th run of anything is clean.
    let guard = rough_faults::ScopedPlan::parse("job.run.fail:3");

    let daemon =
        Daemon::start(DaemonConfig::new("127.0.0.1:0", &state).executor(Arc::new(SerialExecutor)))
            .expect("daemon starts");
    let client = Client::new(daemon.addr());

    let poison = scenario("quarantine-poison", 0xD1);
    let (submission, outcome) = client
        .submit_watch(&poison, |_| {})
        .expect("watch poison job");
    let error = outcome.expect_err("job must settle as quarantined, not succeed");
    assert!(
        error.contains("injected job failure"),
        "unexpected terminal error: {error}"
    );
    assert_eq!(rough_faults::fired_count("job.run.fail"), 3);

    let (status, jobs) = client.status_detail().expect("status detail");
    assert_eq!(status.quarantined, 1, "STATUS must count the poison job");
    assert_eq!(status.failed, 0);
    assert_eq!(status.queued, 0, "a quarantined job must not re-queue");
    let row = jobs
        .iter()
        .find(|j| j.id == submission.job)
        .expect("poison job listed");
    assert_eq!(row.state, "quarantined");

    // The runner pool is not stalled: an unrelated job completes normally.
    let healthy = scenario("quarantine-healthy", 0xD2);
    let (_, outcome) = client.submit_watch(&healthy, |_| {}).expect("healthy job");
    assert!(outcome.is_ok(), "healthy job failed: {outcome:?}");

    // Resubmitting the poisoned fingerprint schedules a FRESH job (the
    // quarantined one is excluded from dedupe) — and with the fault budget
    // exhausted it now completes.
    let (resubmission, outcome) = client
        .submit_watch(&poison, |_| {})
        .expect("resubmitted poison scenario");
    assert_ne!(resubmission.job, submission.job);
    assert!(outcome.is_ok(), "fresh resubmission failed: {outcome:?}");
    assert_eq!(
        resubmission.fingerprint,
        wire::scenario_fingerprint(&poison)
    );

    client.shutdown().expect("shutdown");
    daemon.join();
    drop(guard);

    // Restart: the quarantined state survives the compacted journal and the
    // queue drains normally.
    let daemon =
        Daemon::start(DaemonConfig::new("127.0.0.1:0", &state).executor(Arc::new(SerialExecutor)))
            .expect("daemon restarts");
    let client = Client::new(daemon.addr());
    let (status, jobs) = client.status_detail().expect("status after restart");
    assert_eq!(status.quarantined, 1, "quarantine lost across restart");
    assert_eq!(status.done, 2);
    assert_eq!(status.queued, 0);
    let row = jobs
        .iter()
        .find(|j| j.id == submission.job)
        .expect("poison job still listed");
    assert_eq!(row.state, "quarantined");

    client.shutdown().expect("shutdown");
    daemon.join();
    std::env::remove_var(rough_service::JOB_RETRIES_ENV);
    std::fs::remove_dir_all(&state).ok();
}
