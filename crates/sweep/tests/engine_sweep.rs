//! End-to-end sweeps through the real engine.
//!
//! Three properties the broadband subsystem promises are checked against
//! actual MOM solves (reduced grids keep the suite fast):
//!
//! * **Warm-state reuse** — the frequency-independent Karhunen–Loève basis
//!   built during the coarse scan is served from the shared kernel cache in
//!   every refinement round, so point *i + 1* is measurably cheaper than
//!   point *i* (zero KL rebuilds after round 0).
//! * **Checkpointed resume** — re-running a checkpointed sweep over the same
//!   directory restores every round from its file and reproduces the
//!   exported `Z(f)` table byte for byte without building a single context.
//! * **Golden regression** — a reduced-band adaptive sweep over the Fig. 5
//!   half-spheroid pins its refinement points and exported table against a
//!   snapshot (regenerate with `REGEN_GOLDEN=1`).

use rough_core::RoughnessSpec;
use rough_em::material::{Conductor, Dielectric, Stackup};
use rough_em::units::{GigaHertz, Micrometers};
use rough_engine::{CacheStats, EngineError, Scenario, SweepScenario};
use rough_surface::RoughSurface;
use rough_sweep::{zf_csv, EngineEvaluator, FrequencySweep, RoundOutcome, SweepEvaluator};
use std::path::PathBuf;

fn paper_stack() -> Stackup {
    Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide())
}

/// The reduced Fig. 5 half-spheroid protrusion (deterministic, bit-stable).
fn spheroid_template(cells: usize) -> Scenario {
    let tile = 12.0e-6;
    let (height, base_radius) = (5.8e-6, 4.7e-6);
    let surface = RoughSurface::from_fn(cells, tile, |x, y| {
        let dx = x - 0.5 * tile;
        let dy = y - 0.5 * tile;
        let r2 = (dx * dx + dy * dy) / (base_radius * base_radius);
        if r2 < 1.0 {
            height * (1.0 - r2).sqrt()
        } else {
            0.0
        }
    });
    Scenario::builder(paper_stack())
        .name("sweep-spheroid")
        .roughness(RoughnessSpec::deterministic(Micrometers::new(12.0)))
        .frequencies([GigaHertz::new(2.0).into()])
        .cells_per_side(cells)
        .deterministic(surface)
        .build()
        .expect("valid deterministic template")
}

/// A tiny stochastic template whose KL basis is the reusable warm state.
fn stochastic_template() -> Scenario {
    Scenario::builder(paper_stack())
        .name("sweep-ensemble")
        .roughness(RoughnessSpec::gaussian(
            Micrometers::new(1.0),
            Micrometers::new(1.0),
        ))
        .frequencies([GigaHertz::new(2.0).into()])
        .cells_per_side(6)
        .max_kl_modes(2)
        .monte_carlo(2)
        .master_seed(0x2009)
        .build()
        .expect("valid stochastic template")
}

fn reduced_sweep(template: Scenario) -> SweepScenario {
    SweepScenario::builder(
        template,
        GigaHertz::new(2.0).into(),
        GigaHertz::new(10.0).into(),
    )
    .coarse_points(3)
    .max_points(5)
    .tolerance(1e-6) // far below curve smoothness: forces refinement to budget
    .build()
    .expect("valid reduced sweep")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rough-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Records each round's cache delta so per-round warmth is observable.
struct Recording {
    inner: EngineEvaluator,
    rounds: Vec<CacheStats>,
}

impl SweepEvaluator for Recording {
    fn solve_round(
        &mut self,
        sweep: &SweepScenario,
        points: &[f64],
    ) -> Result<RoundOutcome, EngineError> {
        let outcome = self.inner.solve_round(sweep, points)?;
        self.rounds.push(outcome.cache);
        Ok(outcome)
    }
}

#[test]
fn kl_basis_warms_up_in_round_zero_and_is_reused_after() {
    let mut evaluator = Recording {
        inner: EngineEvaluator::new(),
        rounds: Vec::new(),
    };
    let outcome = FrequencySweep::new(reduced_sweep(stochastic_template()))
        .run(&mut evaluator)
        .unwrap();
    assert_eq!(outcome.points.len(), 5, "budget should be exhausted");
    assert!(evaluator.rounds.len() >= 2, "no refinement rounds ran");
    // The eigendecomposition runs exactly once, in the coarse scan; every
    // later round (new frequencies, same covariance) hits the shared cache.
    assert_eq!(evaluator.rounds[0].kl_misses, 1);
    for (i, round) in evaluator.rounds.iter().enumerate().skip(1) {
        assert_eq!(round.kl_misses, 0, "round {i} rebuilt the KL basis");
        assert!(round.kl_hits > 0, "round {i} did not reuse the KL basis");
    }
    assert!(outcome.cache.kl_hits > 0);
    assert_eq!(outcome.cache.kl_misses, 1);
}

#[test]
fn checkpointed_sweep_resumes_bit_identically() {
    let dir = temp_dir("resume");
    let stack = paper_stack();
    let sweep = || reduced_sweep(spheroid_template(6));

    let mut first = EngineEvaluator::new().checkpoint_dir(&dir);
    let original = FrequencySweep::new(sweep()).run(&mut first).unwrap();
    assert!(
        dir.join("round000.jsonl").exists(),
        "rounds not checkpointed"
    );

    // Fresh evaluator, cold cache, same directory: every round restores
    // from its checkpoint file instead of solving.
    let mut second = EngineEvaluator::new().checkpoint_dir(&dir);
    let resumed = FrequencySweep::new(sweep()).run(&mut second).unwrap();

    // The exported curve is byte-identical; only the cache accounting in the
    // JSON summary may differ (a resumed run builds nothing).
    assert_eq!(zf_csv(&original, &stack), zf_csv(&resumed, &stack));
    for (a, b) in original.points.iter().zip(&resumed.points) {
        assert_eq!(a.frequency_hz.to_bits(), b.frequency_hz.to_bits());
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }
    // Nothing was rebuilt on resume: restored units never touch the cache.
    assert_eq!(resumed.cache.misses, 0, "resume re-built solver contexts");
    assert_eq!(original.rounds, resumed.rounds);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Column-aware comparison: decimal and bit columns both decode to floats
/// compared at 1e-6 relative so last-ulp libm differences across platforms
/// do not flake the golden.
fn assert_zf_rows_match(want: &str, got: &str) {
    let want_lines: Vec<&str> = want.lines().collect();
    let got_lines: Vec<&str> = got.lines().collect();
    assert_eq!(
        want_lines.len(),
        got_lines.len(),
        "row count changed (golden {} vs actual {}): the refinement path moved",
        want_lines.len(),
        got_lines.len()
    );
    assert_eq!(want_lines[0], got_lines[0], "header changed");
    for (row, (w, g)) in want_lines.iter().zip(&got_lines).enumerate().skip(1) {
        let wf: Vec<&str> = w.split(',').collect();
        let gf: Vec<&str> = g.split(',').collect();
        assert_eq!(wf.len(), gf.len(), "row {row}: column count changed");
        for (col, (wc, gc)) in wf.iter().zip(&gf).enumerate() {
            let decode = |t: &str| -> f64 {
                if col >= 5 {
                    f64::from_bits(u64::from_str_radix(t, 16).expect("bits column"))
                } else {
                    t.parse().expect("numeric column")
                }
            };
            let (wv, gv) = (decode(wc), decode(gc));
            let tol = 1e-6 * wv.abs().max(1e-9);
            assert!(
                (wv - gv).abs() <= tol,
                "row {row} col {col}: golden {wv} vs actual {gv}"
            );
        }
    }
}

#[test]
fn reduced_band_adaptive_sweep_matches_golden_zf_table() {
    let stack = paper_stack();
    let mut evaluator = EngineEvaluator::new();
    let outcome = FrequencySweep::new(reduced_sweep(spheroid_template(8)))
        .run(&mut evaluator)
        .unwrap();
    assert_eq!(
        outcome.points.len(),
        5,
        "refinement points moved: expected the full 5-point budget"
    );
    let actual = zf_csv(&outcome, &stack);

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("reduced_band_zf.csv");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} (run with REGEN_GOLDEN=1)",
            path.display()
        )
    });
    assert_zf_rows_match(&expected, &actual);
}
