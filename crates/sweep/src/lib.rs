//! # rough-sweep
//!
//! Broadband frequency-sweep driver: adaptive sampling of the roughness-loss
//! curve, warm-state reuse across frequency points, rational fitting and
//! circuit-compatible export.
//!
//! Chen & Wong's headline artifact (Fig. 5/6 of DATE 2009) is a *curve*:
//! the power-loss enhancement factor `K(f)` of one rough interconnect swept
//! across a frequency band. Each point of that curve is a full SWM campaign
//! — MOM assembly, dense or Krylov solve, possibly an ensemble — so the
//! broadband question is really a sampling-budget question: where must the
//! expensive solves land so that the *whole* curve is known to tolerance?
//! This crate answers it in three layers:
//!
//! 1. **Adaptive refinement** ([`adaptive`]) — [`FrequencySweep`] drives a
//!    [`rough_engine::SweepScenario`]: a coarse log-spaced scan, then rounds
//!    of bisection wherever the solved curve deviates from a local
//!    barycentric rational interpolant by more than the sweep tolerance,
//!    until the curve self-validates or the point budget is spent. Candidate
//!    selection is fully deterministic, so resumed sweeps retrace the same
//!    refinement path bit for bit.
//! 2. **Warm evaluation** ([`evaluate`]) — the [`SweepEvaluator`] trait
//!    turns one round of frequency points into solved loss factors.
//!    [`EngineEvaluator`] executes rounds in-process through a single shared
//!    [`rough_engine::KernelCache`], so the KL basis, geometry-driven
//!    matrix-free generator tables and other frequency-independent state
//!    built for point *i* are reused at point *i + 1*; cache counters are
//!    accumulated into the outcome so the reuse is observable. Rounds are
//!    checkpointed per frequency point and resume bit-identically.
//! 3. **Fit & export** ([`export`], re-exported fitting from
//!    [`rough_numerics::rational`]) — the swept curve is compressed to a
//!    pole/residue rational model when one reproduces every sample within
//!    tolerance (with an explicit tabular fallback otherwise) and exported
//!    as a `Z(f)` CSV table, a Touchstone-style one-port impedance file and
//!    a SPICE-friendly effective-conductivity table.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod evaluate;
pub mod export;

pub use adaptive::{FrequencySweep, SweepOutcome};
pub use evaluate::{EngineEvaluator, RoundOutcome, SweepEvaluator, SweepPoint};
pub use export::{spice_table, touchstone, write_exports, zf_csv};
