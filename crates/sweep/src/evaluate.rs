//! Turning one refinement round into solved loss factors.
//!
//! The adaptive driver is deliberately ignorant of *how* a frequency point
//! gets solved — it hands a sorted batch of new frequencies to a
//! [`SweepEvaluator`] and gets loss factors plus cache counters back. The
//! in-process implementation, [`EngineEvaluator`], instantiates each round as
//! an ordinary [`Scenario`](rough_engine::Scenario) via
//! [`SweepScenario::scenario_for_points`] and executes it with a *shared*
//! [`KernelCache`]: everything frequency-independent (the Karhunen–Loève
//! basis, matrix-free generator tables keyed by geometry) warms up during the
//! coarse scan and is served from cache in every later round. Service-side
//! evaluators (the campaign daemon) implement the same trait over the wire.

use rough_engine::{
    wire, CacheStats, EngineError, KernelCache, Run, RunConfig, SweepScenario, UnitExecutor,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One solved point of the swept curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Frequency in Hz.
    pub frequency_hz: f64,
    /// Roughness-loss enhancement factor `K = Pr / Ps` at that frequency
    /// (the ensemble mean for stochastic templates).
    pub value: f64,
}

/// The result of solving one refinement round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Solved points, in the order the round requested them.
    pub points: Vec<SweepPoint>,
    /// Kernel-cache activity attributed to this round.
    pub cache: CacheStats,
}

/// Solves one round of sweep frequency points.
///
/// Implementations must be deterministic: the same sweep and point set must
/// produce bit-identical values, or resumed sweeps would diverge from their
/// first run.
pub trait SweepEvaluator {
    /// Solves the template at `points` (sorted ascending, all new) and
    /// returns one loss factor per point.
    ///
    /// # Errors
    ///
    /// Propagates scenario-validation and execution failures.
    fn solve_round(
        &mut self,
        sweep: &SweepScenario,
        points: &[f64],
    ) -> Result<RoundOutcome, EngineError>;
}

/// Accumulates one round's cache counters into a sweep-level total.
///
/// Hit/miss counters add; `entries` (a resident count, not a rate) keeps the
/// high-water mark.
pub fn accumulate(total: &mut CacheStats, round: &CacheStats) {
    total.hits += round.hits;
    total.misses += round.misses;
    total.kl_hits += round.kl_hits;
    total.kl_misses += round.kl_misses;
    total.table_hits += round.table_hits;
    total.table_misses += round.table_misses;
    total.entries = total.entries.max(round.entries);
}

/// In-process evaluator: each round is a [`Run`] against a shared
/// [`KernelCache`], optionally checkpointed round by round.
///
/// With a checkpoint directory configured, round *k* writes
/// `round{k:03}.jsonl`; re-running the same sweep over the same directory
/// resumes every finished round from its file (validated against the round's
/// scenario fingerprint — a stale file for different points is discarded and
/// rebuilt) and produces bit-identical values.
pub struct EngineEvaluator {
    cache: Arc<KernelCache>,
    executor: Option<Arc<dyn UnitExecutor>>,
    checkpoint_dir: Option<PathBuf>,
    rounds: usize,
}

impl Default for EngineEvaluator {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineEvaluator {
    /// Creates an evaluator with a fresh private cache and the default
    /// executor.
    pub fn new() -> Self {
        Self {
            cache: Arc::new(KernelCache::new()),
            executor: None,
            checkpoint_dir: None,
            rounds: 0,
        }
    }

    /// Shares an existing kernel cache (e.g. the daemon's engine-wide one).
    pub fn with_cache(mut self, cache: Arc<KernelCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Executes rounds through an explicit executor instead of the default.
    pub fn executor(mut self, executor: Arc<dyn UnitExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Checkpoints every round into `dir` (created on first use) and resumes
    /// from existing round files.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// The shared kernel cache (inspect its warm state after a sweep).
    pub fn cache(&self) -> &Arc<KernelCache> {
        &self.cache
    }

    fn config(&self, checkpoint: Option<&Path>) -> RunConfig {
        let mut config = RunConfig::new().cache(Arc::clone(&self.cache));
        if let Some(executor) = &self.executor {
            config = config.executor_arc(Arc::clone(executor));
        }
        if let Some(path) = checkpoint {
            config = config.checkpoint(path);
        }
        config
    }
}

impl SweepEvaluator for EngineEvaluator {
    fn solve_round(
        &mut self,
        sweep: &SweepScenario,
        points: &[f64],
    ) -> Result<RoundOutcome, EngineError> {
        let scenario = sweep.scenario_for_points(points)?;
        let expected = wire::scenario_fingerprint(&scenario);
        let round = self.rounds;
        self.rounds += 1;
        let checkpoint = match &self.checkpoint_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                Some(dir.join(format!("round{round:03}.jsonl")))
            }
            None => None,
        };
        // Resume a finished/partial round from its checkpoint when the file
        // belongs to this exact point set; anything else (stale points, a
        // corrupt file) falls back to a fresh run, which truncates it.
        let run = match &checkpoint {
            Some(path) if path.exists() => match Run::resume(path, self.config(Some(path))) {
                Ok(run) if wire::scenario_fingerprint(run.plan().scenario()) == expected => run,
                _ => Run::new(&scenario, self.config(Some(path)))?,
            },
            other => Run::new(&scenario, self.config(other.as_deref()))?,
        };
        let report = run.execute()?;
        let mut values = vec![f64::NAN; points.len()];
        for case in &report.cases {
            if let Some(slot) = values.get_mut(case.id.frequency) {
                *slot = case.mean;
            }
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(EngineError::InvalidScenario(
                "sweep round produced a non-finite or missing loss factor".into(),
            ));
        }
        let points = points
            .iter()
            .zip(values)
            .map(|(&frequency_hz, value)| SweepPoint {
                frequency_hz,
                value,
            })
            .collect();
        Ok(RoundOutcome {
            points,
            cache: report.cache,
        })
    }
}
