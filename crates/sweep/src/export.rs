//! Circuit-compatible export of the swept curve.
//!
//! The paper's deliverable for circuit tools is not the loss factor itself
//! but the *effective* surface properties it implies: a rough conductor
//! dissipating `K` times the smooth-wall power behaves, to a field solver or
//! a transmission-line model, like a smooth conductor with surface
//! resistance `Rs_eff = K · Rs_smooth` — equivalently an effective
//! conductivity `σ_eff = σ / K²` (skin-effect resistance scales as
//! `1/√σ`). Three sinks cover the common consumers:
//!
//! * [`zf_csv`] — the full `Z(f)` table with exact IEEE-754 bit columns, the
//!   golden-diffable form used by CI;
//! * [`touchstone`] — a Touchstone-style one-port impedance file
//!   (`# HZ Z RI R 1`) carrying `Zs_eff = (1 + j) · Rs_eff`, the
//!   surface-impedance boundary condition of the skin-effect regime;
//! * [`spice_table`] — a SPICE-friendly frequency/effective-conductivity
//!   table for behavioral conductor models.

use crate::adaptive::SweepOutcome;
use rough_em::material::Stackup;
use rough_em::units::Frequency;
use std::path::{Path, PathBuf};

/// Effective surface quantities at one solved point.
fn surface_row(stack: &Stackup, frequency_hz: f64, k: f64) -> (f64, f64, f64) {
    let rs_smooth = stack
        .conductor()
        .surface_resistance(Frequency::new(frequency_hz));
    let rs_eff = k * rs_smooth;
    let sigma_eff = stack.conductor().conductivity() / (k * k);
    (rs_smooth, rs_eff, sigma_eff)
}

/// The `Z(f)` table as CSV.
///
/// Columns: frequency, loss factor `K`, smooth and effective surface
/// resistance (Ω/sq), effective conductivity (S/m), then the exact bits of
/// `f` and `K` — two runs that solved the same physics produce
/// byte-identical tables, which is what the service-smoke golden diff
/// checks.
pub fn zf_csv(outcome: &SweepOutcome, stack: &Stackup) -> String {
    let mut out = String::from(
        "f_hz,k_factor,rs_smooth_ohm_sq,rs_eff_ohm_sq,sigma_eff_s_per_m,f_bits,k_bits\n",
    );
    for p in &outcome.points {
        let (rs_smooth, rs_eff, sigma_eff) = surface_row(stack, p.frequency_hz, p.value);
        out.push_str(&format!(
            "{:e},{:e},{:e},{:e},{:e},{:016x},{:016x}\n",
            p.frequency_hz,
            p.value,
            rs_smooth,
            rs_eff,
            sigma_eff,
            p.frequency_hz.to_bits(),
            p.value.to_bits(),
        ));
    }
    out
}

/// A Touchstone-style one-port file carrying the effective surface impedance
/// `Zs_eff(f) = (1 + j) · K(f) · Rs_smooth(f)` in real/imaginary form.
///
/// In the skin-effect regime the smooth-wall surface impedance is
/// `(1 + j) · Rs`; roughness scales the dissipative part by `K`, and the SWM
/// model's reactance scales with it (the stored and dissipated energy of the
/// evanescent field share one field solution), so both parts carry the
/// factor.
pub fn touchstone(outcome: &SweepOutcome, stack: &Stackup, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "! {name}: effective surface impedance Zs_eff(f)\n"
    ));
    out.push_str(&format!(
        "! fitted model: {} (max rel err {:e}, tolerance {:e})\n",
        outcome.fit.describe(),
        outcome.max_fit_error(),
        outcome.tolerance,
    ));
    out.push_str(&format!(
        "! adaptive sweep: {} points, {} rounds, converged {}\n",
        outcome.points.len(),
        outcome.rounds,
        outcome.converged,
    ));
    out.push_str("# HZ Z RI R 1\n");
    for p in &outcome.points {
        let (_, rs_eff, _) = surface_row(stack, p.frequency_hz, p.value);
        out.push_str(&format!("{:e} {:e} {:e}\n", p.frequency_hz, rs_eff, rs_eff));
    }
    out
}

/// A SPICE-friendly frequency/effective-conductivity table.
///
/// Emitted as comment-documented `+ (f, σ_eff)` continuation pairs, the form
/// behavioral conductor models and table-driven `G`/`E` elements consume;
/// purely tabular, so it stays valid even when the rational fit degraded.
pub fn spice_table(outcome: &SweepOutcome, stack: &Stackup, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "* {name}: effective conductivity sigma_eff(f) = sigma / K(f)^2\n"
    ));
    out.push_str(&format!(
        "* bulk sigma = {:e} S/m; {} solved points; fit {}\n",
        stack.conductor().conductivity(),
        outcome.points.len(),
        outcome.fit.describe(),
    ));
    out.push_str(".param roughsim_sigma_eff_table =\n");
    for p in &outcome.points {
        let (_, _, sigma_eff) = surface_row(stack, p.frequency_hz, p.value);
        out.push_str(&format!("+ ({:e}, {:e})\n", p.frequency_hz, sigma_eff));
    }
    out
}

/// Writes all three export forms next to each other:
/// `<base>.csv`, `<base>.s1p` and `<base>.sp` under `dir`.
///
/// # Errors
///
/// Propagates filesystem failures (the directory is created if missing).
pub fn write_exports(
    outcome: &SweepOutcome,
    stack: &Stackup,
    dir: impl AsRef<Path>,
    base: &str,
) -> std::io::Result<Vec<PathBuf>> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let paths = vec![
        dir.join(format!("{base}.csv")),
        dir.join(format!("{base}.s1p")),
        dir.join(format!("{base}.sp")),
    ];
    std::fs::write(&paths[0], zf_csv(outcome, stack))?;
    std::fs::write(&paths[1], touchstone(outcome, stack, base))?;
    std::fs::write(&paths[2], spice_table(outcome, stack, base))?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::SweepPoint;
    use rough_engine::CacheStats;
    use rough_numerics::rational::{fit_curve, FitOptions};

    fn outcome() -> SweepOutcome {
        let fs = [1.0e9, 2.0e9, 4.0e9, 8.0e9, 16.0e9];
        let ys = [1.1, 1.3, 1.6, 1.8, 1.9];
        let fit = fit_curve(&fs, &ys, &FitOptions::default()).unwrap();
        SweepOutcome {
            points: fs
                .iter()
                .zip(ys)
                .map(|(&frequency_hz, value)| SweepPoint {
                    frequency_hz,
                    value,
                })
                .collect(),
            rounds: 1,
            converged: true,
            cache: CacheStats::default(),
            fit,
            tolerance: 1e-3,
        }
    }

    #[test]
    fn csv_rows_carry_consistent_physics_and_exact_bits() {
        let stack = Stackup::paper_baseline();
        let text = zf_csv(&outcome(), &stack);
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "f_hz,k_factor,rs_smooth_ohm_sq,rs_eff_ohm_sq,sigma_eff_s_per_m,f_bits,k_bits"
        );
        let sigma = stack.conductor().conductivity();
        for line in lines {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 7);
            let f: f64 = cols[0].parse().unwrap();
            let k: f64 = cols[1].parse().unwrap();
            let rs_smooth: f64 = cols[2].parse().unwrap();
            let rs_eff: f64 = cols[3].parse().unwrap();
            let sigma_eff: f64 = cols[4].parse().unwrap();
            assert!((rs_eff - k * rs_smooth).abs() < 1e-12 * rs_eff);
            assert!((sigma_eff - sigma / (k * k)).abs() < 1e-6 * sigma_eff);
            // Bits columns decode to the decimal columns exactly.
            assert_eq!(f64::from_bits(u64::from_str_radix(cols[5], 16).unwrap()), f);
            assert_eq!(f64::from_bits(u64::from_str_radix(cols[6], 16).unwrap()), k);
        }
    }

    #[test]
    fn touchstone_has_header_and_equal_real_imaginary_parts() {
        let stack = Stackup::paper_baseline();
        let text = touchstone(&outcome(), &stack, "unit-test");
        assert!(text.contains("# HZ Z RI R 1"));
        let data: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('!') && !l.starts_with('#'))
            .collect();
        assert_eq!(data.len(), 5);
        for line in data {
            let cols: Vec<f64> = line
                .split_whitespace()
                .map(|t| t.parse().unwrap())
                .collect();
            assert_eq!(cols.len(), 3);
            assert_eq!(cols[1].to_bits(), cols[2].to_bits()); // (1 + j) Rs_eff
            assert!(cols[1] > 0.0);
        }
    }

    #[test]
    fn spice_table_lists_every_point_with_reduced_conductivity() {
        let stack = Stackup::paper_baseline();
        let text = spice_table(&outcome(), &stack, "unit-test");
        let rows: Vec<&str> = text.lines().filter(|l| l.starts_with("+ (")).collect();
        assert_eq!(rows.len(), 5);
        let sigma = stack.conductor().conductivity();
        for row in rows {
            let inner = row.trim_start_matches("+ (").trim_end_matches(')');
            let (_, sigma_eff) = inner.split_once(", ").unwrap();
            let sigma_eff: f64 = sigma_eff.parse().unwrap();
            assert!(sigma_eff < sigma); // K > 1 always reduces conductivity
        }
    }

    #[test]
    fn write_exports_creates_all_three_files() {
        let stack = Stackup::paper_baseline();
        let dir = std::env::temp_dir().join(format!("rough-sweep-export-{}", std::process::id()));
        let paths = write_exports(&outcome(), &stack, &dir, "unit").unwrap();
        assert_eq!(paths.len(), 3);
        for path in &paths {
            assert!(path.exists());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
