//! The adaptive refinement loop.
//!
//! [`FrequencySweep`] spends its solve budget where the curve needs it. The
//! error indicator is *leave-one-out cross-validation*: a solved point is
//! predicted from all the others with a Floater–Hormann barycentric rational
//! interpolant (in log-frequency, matching the log-spaced scan); where the
//! prediction misses the solved value by more than the sweep tolerance, the
//! curve is under-resolved and both adjacent intervals are flagged for
//! geometric bisection. Flags are scored by their cross-validation error, so
//! a tight remaining budget goes to the worst intervals first, and every tie
//! is broken by frequency — the refinement path is a pure function of the
//! sweep definition and the solved values, which is what makes resumed
//! sweeps bit-identical.

use crate::evaluate::{accumulate, RoundOutcome, SweepEvaluator, SweepPoint};
use rough_engine::{CacheStats, EngineError, RunEvent, RunObserver, SweepScenario};
use rough_numerics::rational::{fit_curve, BarycentricRational, CurveFit, FitOptions};
use std::sync::Arc;

/// The completed sweep: solved points, the fitted curve and the run's
/// accounting.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Solved points, sorted by frequency.
    pub points: Vec<SweepPoint>,
    /// Refinement rounds executed (the coarse scan is round 0).
    pub rounds: usize,
    /// Whether the curve self-validated to tolerance (`false` means the
    /// point budget ran out first).
    pub converged: bool,
    /// Kernel-cache activity accumulated over every round — the visible
    /// evidence of warm-state reuse across frequency points.
    pub cache: CacheStats,
    /// The fitted curve: a pole/residue rational model, or the explicit
    /// tabular fallback when no stable fit met tolerance.
    pub fit: CurveFit,
    /// The relative tolerance the sweep refined toward.
    pub tolerance: f64,
}

impl SweepOutcome {
    /// Largest relative error of the fitted curve over the solved points.
    pub fn max_fit_error(&self) -> f64 {
        let y_scale = self
            .points
            .iter()
            .fold(0.0f64, |acc, p| acc.max(p.value.abs()))
            .max(f64::MIN_POSITIVE);
        self.points
            .iter()
            .map(|p| {
                (self.fit.evaluate(p.frequency_hz) - p.value).abs()
                    / p.value.abs().max(1e-3 * y_scale)
            })
            .fold(0.0, f64::max)
    }

    /// Structured JSON summary (points carry exact IEEE-754 bits so goldens
    /// can diff byte-for-byte).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"solved_points\": {},\n", self.points.len()));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!("  \"converged\": {},\n", self.converged));
        out.push_str(&format!("  \"tolerance\": {:e},\n", self.tolerance));
        out.push_str(&format!("  \"fit\": \"{}\",\n", self.fit.describe()));
        out.push_str(&format!(
            "  \"max_fit_error\": {:e},\n",
            self.max_fit_error()
        ));
        out.push_str(&format!(
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"kl_hits\": {}, \"kl_misses\": {}, \"table_hits\": {}, \"table_misses\": {}}},\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.kl_hits,
            self.cache.kl_misses,
            self.cache.table_hits,
            self.cache.table_misses,
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"f_hz\": {:e}, \"k\": {:e}, \"f_bits\": \"{:016x}\", \"k_bits\": \"{:016x}\"}}{comma}\n",
                p.frequency_hz,
                p.value,
                p.frequency_hz.to_bits(),
                p.value.to_bits(),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Adaptive broadband sweep driver.
///
/// Owns the sweep definition and the refinement policy; the actual solves go
/// through a [`SweepEvaluator`]. Emits
/// [`RunEvent::SweepPointSolved`] to an optional observer as each point
/// lands.
pub struct FrequencySweep {
    sweep: SweepScenario,
    observer: Option<Arc<dyn RunObserver>>,
}

impl FrequencySweep {
    /// Wraps a sweep definition.
    pub fn new(sweep: SweepScenario) -> Self {
        Self {
            sweep,
            observer: None,
        }
    }

    /// Streams per-point progress events to `observer`.
    pub fn observer(mut self, observer: Arc<dyn RunObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The wrapped sweep definition.
    pub fn sweep(&self) -> &SweepScenario {
        &self.sweep
    }

    /// Runs the sweep to convergence or budget exhaustion and fits the
    /// resulting curve.
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures; fitting itself cannot fail once points
    /// are solved (the tabular fallback always exists).
    pub fn run(&self, evaluator: &mut dyn SweepEvaluator) -> Result<SweepOutcome, EngineError> {
        let budget = self.sweep.max_points();
        let tolerance = self.sweep.tolerance();
        let mut freqs: Vec<f64> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut cache = CacheStats::default();
        let mut solved = 0usize;
        let mut rounds = 0usize;

        let coarse = self.sweep.coarse_grid();
        self.solve_round(
            evaluator,
            &coarse,
            &mut freqs,
            &mut values,
            &mut cache,
            &mut solved,
        )?;
        rounds += 1;

        while solved < budget {
            let flagged = flagged_intervals(&freqs, &values, tolerance);
            if flagged.is_empty() {
                break;
            }
            let candidates = refinement_candidates(&freqs, &flagged, budget - solved);
            if candidates.is_empty() {
                break;
            }
            let before = solved;
            self.solve_round(
                evaluator,
                &candidates,
                &mut freqs,
                &mut values,
                &mut cache,
                &mut solved,
            )?;
            rounds += 1;
            if solved == before {
                break;
            }
        }

        let converged = flagged_intervals(&freqs, &values, tolerance).is_empty();
        let options = FitOptions {
            tolerance,
            ..FitOptions::default()
        };
        let fit = fit_curve(&freqs, &values, &options)
            .map_err(|e| EngineError::InvalidScenario(format!("sweep curve fit failed: {e}")))?;
        let points = freqs
            .into_iter()
            .zip(values)
            .map(|(frequency_hz, value)| SweepPoint {
                frequency_hz,
                value,
            })
            .collect();
        Ok(SweepOutcome {
            points,
            rounds,
            converged,
            cache,
            fit,
            tolerance,
        })
    }

    /// Solves one batch of points and merges them into the sorted curve.
    fn solve_round(
        &self,
        evaluator: &mut dyn SweepEvaluator,
        points: &[f64],
        freqs: &mut Vec<f64>,
        values: &mut Vec<f64>,
        cache: &mut CacheStats,
        solved: &mut usize,
    ) -> Result<(), EngineError> {
        let RoundOutcome {
            points: outcome,
            cache: round_cache,
        } = evaluator.solve_round(&self.sweep, points)?;
        accumulate(cache, &round_cache);
        for p in &outcome {
            let pos = freqs.partition_point(|&f| f < p.frequency_hz);
            if freqs.get(pos).is_some_and(|&f| f == p.frequency_hz) {
                continue; // defensively skip exact duplicates
            }
            freqs.insert(pos, p.frequency_hz);
            values.insert(pos, p.value);
            *solved += 1;
            if let Some(observer) = &self.observer {
                observer.on_event(&RunEvent::SweepPointSolved {
                    frequency_hz: p.frequency_hz,
                    value: p.value,
                    solved: *solved,
                    budget: self.sweep.max_points(),
                });
            }
        }
        Ok(())
    }
}

/// Flags under-resolved intervals by leave-one-out cross-validation.
///
/// Returns `(interval index, score)` pairs where interval `i` spans
/// `freqs[i]..freqs[i + 1]`; the score is the worst cross-validation error
/// touching the interval. An empty result means every solved point is
/// predicted by its neighbours within `tolerance` — the curve
/// self-validates.
fn flagged_intervals(freqs: &[f64], values: &[f64], tolerance: f64) -> Vec<(usize, f64)> {
    let n = freqs.len();
    if n < 3 {
        return Vec::new();
    }
    let y_scale = values
        .iter()
        .fold(0.0f64, |acc, &v| acc.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    let mut scores = vec![0.0f64; n - 1];
    for j in 1..n - 1 {
        // Local window: predict the held-out point from its (at most) six
        // nearest neighbours only. A global interpolant would bleed the
        // error of a sharp feature into perfectly smooth regions far away,
        // flagging the whole band and degenerating refinement into uniform
        // bisection — locality is what lets points concentrate.
        let lo = j.saturating_sub(3);
        let hi = (j + 3).min(n - 1);
        let xs: Vec<f64> = (lo..=hi)
            .filter(|&i| i != j)
            .map(|i| freqs[i].ln())
            .collect();
        let ys: Vec<f64> = (lo..=hi).filter(|&i| i != j).map(|i| values[i]).collect();
        let d = 3.min(xs.len() - 1);
        let Ok(model) = BarycentricRational::new(&xs, &ys, d) else {
            continue;
        };
        let predicted = model.evaluate(freqs[j].ln());
        let err = (predicted - values[j]).abs() / values[j].abs().max(1e-3 * y_scale);
        if err > tolerance {
            scores[j - 1] = scores[j - 1].max(err);
            scores[j] = scores[j].max(err);
        }
    }
    scores
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > 0.0)
        .map(|(i, &s)| (i, s))
        .collect()
}

/// Geometric midpoints of the worst flagged intervals, at most `budget` of
/// them, sorted ascending. Deterministic: ranked by score (descending) with
/// frequency as the tie-break.
fn refinement_candidates(freqs: &[f64], flagged: &[(usize, f64)], budget: usize) -> Vec<f64> {
    let mut ranked: Vec<(f64, f64)> = Vec::new();
    for &(i, score) in flagged {
        let (fa, fb) = (freqs[i], freqs[i + 1]);
        if fb - fa <= 1e-9 * fa {
            continue; // interval too tight to bisect in f64
        }
        let mid = (fa * fb).sqrt();
        if mid <= fa || mid >= fb {
            continue;
        }
        ranked.push((score, mid));
    }
    ranked.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("scores are finite")
            .then(a.1.partial_cmp(&b.1).expect("frequencies are finite"))
    });
    ranked.truncate(budget);
    let mut mids: Vec<f64> = ranked.into_iter().map(|(_, mid)| mid).collect();
    mids.sort_by(|a, b| a.partial_cmp(b).expect("frequencies are finite"));
    mids.dedup();
    mids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rough_core::RoughnessSpec;
    use rough_em::material::Stackup;
    use rough_em::units::{GigaHertz, Micrometers};
    use rough_engine::Scenario;

    /// Evaluator over an analytic curve — no MOM solves, so the refinement
    /// policy itself can be exercised densely.
    struct Analytic {
        calls: usize,
        f: fn(f64) -> f64,
    }

    impl SweepEvaluator for Analytic {
        fn solve_round(
            &mut self,
            _sweep: &SweepScenario,
            points: &[f64],
        ) -> Result<RoundOutcome, EngineError> {
            self.calls += 1;
            Ok(RoundOutcome {
                points: points
                    .iter()
                    .map(|&frequency_hz| SweepPoint {
                        frequency_hz,
                        value: (self.f)(frequency_hz),
                    })
                    .collect(),
                cache: CacheStats::default(),
            })
        }
    }

    fn template() -> Scenario {
        Scenario::builder(Stackup::paper_baseline())
            .name("adaptive-test")
            .roughness(RoughnessSpec::gaussian(
                Micrometers::new(1.0),
                Micrometers::new(1.0),
            ))
            .frequencies([GigaHertz::new(1.0).into()])
            .cells_per_side(6)
            .max_kl_modes(2)
            .monte_carlo(2)
            .build()
            .unwrap()
    }

    fn sweep(coarse: usize, max: usize, tol: f64) -> SweepScenario {
        SweepScenario::builder(
            template(),
            GigaHertz::new(1.0).into(),
            GigaHertz::new(50.0).into(),
        )
        .coarse_points(coarse)
        .max_points(max)
        .tolerance(tol)
        .build()
        .unwrap()
    }

    /// A smooth saturating curve shaped like the paper's K(f): flat at both
    /// band edges with a knee in between.
    fn knee(f: f64) -> f64 {
        let x = (f / 10.0e9).ln();
        1.75 + 0.75 * (x / (1.0 + x * x).sqrt())
    }

    #[test]
    fn smooth_curve_converges_without_exhausting_the_budget() {
        let mut evaluator = Analytic { calls: 0, f: knee };
        let outcome = FrequencySweep::new(sweep(7, 33, 5e-3))
            .run(&mut evaluator)
            .unwrap();
        assert!(outcome.converged, "sweep did not self-validate");
        assert!(
            outcome.points.len() < 33,
            "adaptive sweep used its whole budget ({} points)",
            outcome.points.len()
        );
        assert!(outcome.rounds >= 1);
        // Points stay sorted and inside the band.
        assert!(outcome
            .points
            .windows(2)
            .all(|w| w[0].frequency_hz < w[1].frequency_hz));
        assert!(outcome.points.first().unwrap().frequency_hz >= 1.0e9);
        assert!(outcome.points.last().unwrap().frequency_hz <= 50.0e9);
    }

    #[test]
    fn refinement_concentrates_points_at_the_knee() {
        let mut evaluator = Analytic { calls: 0, f: knee };
        let outcome = FrequencySweep::new(sweep(5, 25, 2e-3))
            .run(&mut evaluator)
            .unwrap();
        assert!(outcome.points.len() > 5, "no refinement happened");
        // More refined points should land near the knee (around 10 GHz,
        // log-centered) than in the flat tails.
        let near_knee = outcome
            .points
            .iter()
            .filter(|p| p.frequency_hz > 3.0e9 && p.frequency_hz < 30.0e9)
            .count();
        let tails = outcome.points.len() - near_knee;
        assert!(
            near_knee >= tails,
            "refinement ignored the knee: {near_knee} near vs {tails} in tails"
        );
    }

    #[test]
    fn refinement_path_is_deterministic() {
        let run = || {
            let mut evaluator = Analytic { calls: 0, f: knee };
            FrequencySweep::new(sweep(5, 21, 2e-3))
                .run(&mut evaluator)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.frequency_hz.to_bits(), pb.frequency_hz.to_bits());
            assert_eq!(pa.value.to_bits(), pb.value.to_bits());
        }
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn budget_exhaustion_is_reported_as_non_convergence() {
        // A kinked curve the interpolant cannot predict at a loose budget.
        fn kinked(f: f64) -> f64 {
            if f < 8.0e9 {
                1.0
            } else {
                1.0 + ((f - 8.0e9) / 10.0e9).powi(2)
            }
        }
        let mut evaluator = Analytic {
            calls: 0,
            f: kinked,
        };
        let outcome = FrequencySweep::new(sweep(5, 7, 1e-6))
            .run(&mut evaluator)
            .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.points.len(), 7);
    }

    #[test]
    fn events_stream_once_per_solved_point() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        struct Counter {
            count: AtomicUsize,
            last: Mutex<Option<(usize, usize)>>,
        }
        impl RunObserver for Counter {
            fn on_event(&self, event: &RunEvent) {
                if let RunEvent::SweepPointSolved { solved, budget, .. } = event {
                    self.count.fetch_add(1, Ordering::Relaxed);
                    *self.last.lock().unwrap() = Some((*solved, *budget));
                }
            }
        }
        let counter = Arc::new(Counter {
            count: AtomicUsize::new(0),
            last: Mutex::new(None),
        });
        let mut evaluator = Analytic { calls: 0, f: knee };
        let outcome = FrequencySweep::new(sweep(5, 21, 2e-3))
            .observer(Arc::clone(&counter) as Arc<dyn RunObserver>)
            .run(&mut evaluator)
            .unwrap();
        assert_eq!(counter.count.load(Ordering::Relaxed), outcome.points.len());
        let (solved, budget) = counter.last.lock().unwrap().unwrap();
        assert_eq!(solved, outcome.points.len());
        assert_eq!(budget, 21);
    }

    #[test]
    fn fit_degrades_to_tabular_on_rough_data() {
        // Deterministic pseudo-noise no low-degree rational reproduces.
        fn noisy(f: f64) -> f64 {
            let x = f / 1.0e9;
            2.0 + 0.5 * (x * 7.3).sin() * (x * 2.1).cos()
        }
        let mut evaluator = Analytic { calls: 0, f: noisy };
        let outcome = FrequencySweep::new(sweep(9, 11, 1e-4))
            .run(&mut evaluator)
            .unwrap();
        assert!(!outcome.fit.is_rational());
        assert_eq!(outcome.fit.describe(), "tabular");
        // The tabular fallback still reproduces every sample.
        assert!(outcome.max_fit_error() < 1e-12);
    }
}
