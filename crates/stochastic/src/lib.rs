//! # rough-stochastic
//!
//! Stochastic solvers for the rough-surface loss problem (paper §III-D):
//!
//! * [`monte_carlo`] — the brute-force reference: sample surfaces, run the
//!   deterministic model on each, accumulate statistics. Robust but needs
//!   thousands of samples to converge (paper Table I: 5000).
//! * [`pce`] — multivariate Hermite polynomial chaos: the machinery behind the
//!   Homogeneous-Chaos expansion of the solution.
//! * [`sparse_grid`] — Smolyak sparse quadrature built from nested 1D
//!   Gauss–Hermite rules; the collocation nodes whose counts Table I reports.
//! * [`collocation`] — the **spectral stochastic collocation method (SSCM)**:
//!   evaluate the deterministic model at the sparse-grid nodes of the KL germ
//!   space, project onto the Hermite chaos, and read statistics (mean,
//!   variance, CDF) off the resulting surrogate.
//!
//! The drivers are generic over a `Fn(&[f64]) -> f64` model — in this workspace
//! that closure wraps the SWM solve of a surface synthesized from the KL germs,
//! but the machinery is reusable for any quantity of interest.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod collocation;
pub mod monte_carlo;
pub mod pce;
pub mod sparse_grid;
