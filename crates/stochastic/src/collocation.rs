//! The spectral stochastic collocation method (SSCM), paper §III-D.
//!
//! The stochastic problem — the loss-enhancement factor as a function of the
//! random surface — is reduced to a small number of *deterministic* solves:
//!
//! 1. the surface is expressed through `M` independent standard-normal germs
//!    (the Karhunen–Loève expansion of `rough-surface`),
//! 2. the deterministic SWM model is evaluated at the nodes of a Smolyak
//!    sparse grid over those germs ([`crate::sparse_grid`]),
//! 3. the results are projected onto the Hermite polynomial chaos
//!    ([`crate::pce`]) by discrete quadrature,
//! 4. mean, variance and the full CDF are read off the resulting surrogate
//!    (the CDF by cheaply sampling the surrogate, not the model).
//!
//! A 1st-order SSCM uses the level-1 grid (2M + 1 nodes) and a linear chaos; a
//! 2nd-order SSCM uses the level-2 grid and a quadratic chaos — the two columns
//! of the paper's Table I.

use crate::pce::{multi_indices, PceSurrogate};
use crate::sparse_grid::SparseGrid;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rough_numerics::stats::EmpiricalCdf;

/// Configuration of an SSCM run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SscmConfig {
    /// Chaos / sparse-grid order (1 or 2 in the paper; higher orders are
    /// supported).
    pub order: usize,
    /// Number of surrogate samples used to build the output CDF.
    pub surrogate_samples: usize,
    /// Seed for the surrogate-sampling RNG.
    pub seed: u64,
}

impl Default for SscmConfig {
    fn default() -> Self {
        Self {
            order: 2,
            surrogate_samples: 20_000,
            seed: 0xC0FFEE,
        }
    }
}

/// Result of an SSCM run.
#[derive(Debug, Clone)]
pub struct SscmResult {
    surrogate: PceSurrogate,
    evaluations: usize,
    order: usize,
    cdf: EmpiricalCdf,
}

impl SscmResult {
    /// Mean of the quantity of interest.
    pub fn mean(&self) -> f64 {
        self.surrogate.mean()
    }

    /// Variance of the quantity of interest.
    pub fn variance(&self) -> f64 {
        self.surrogate.variance()
    }

    /// Standard deviation of the quantity of interest.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Number of *deterministic model evaluations* that were needed (the
    /// quantity reported in the paper's Table I).
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Chaos order of the run.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The polynomial-chaos surrogate itself.
    pub fn surrogate(&self) -> &PceSurrogate {
        &self.surrogate
    }

    /// CDF of the quantity of interest obtained by sampling the surrogate.
    pub fn cdf(&self) -> &EmpiricalCdf {
        &self.cdf
    }
}

/// Runs the SSCM for a deterministic model driven by `dimension` independent
/// standard-normal germs.
///
/// The `model` closure is called once per sparse-grid node; each call is one
/// full deterministic solve (e.g. an SWM solution of the surface realization
/// synthesized from the germ vector).
///
/// # Panics
///
/// Panics if `dimension == 0`, `config.order == 0` or
/// `config.surrogate_samples == 0`.
pub fn run_sscm(
    dimension: usize,
    config: &SscmConfig,
    mut model: impl FnMut(&[f64]) -> f64,
) -> SscmResult {
    assert!(dimension > 0, "germ dimension must be positive");
    assert!(config.order > 0, "chaos order must be positive");
    let grid = SparseGrid::new(dimension, config.order);
    // Evaluate the model once per node.
    let values: Vec<f64> = grid.nodes().iter().map(|n| model(&n.point)).collect();
    run_sscm_on_grid(&grid, config, &values)
}

/// Batch variant of [`run_sscm`]: projects externally evaluated node values
/// onto the Hermite chaos. This is the engine-backed entry point —
/// `rough-engine` plans the sparse grid, evaluates the deterministic model at
/// every node in parallel, and hands the ordered values back for projection.
///
/// `node_values[i]` must be the model value at `grid.nodes()[i].point`.
///
/// # Panics
///
/// Panics if `config.order` differs from the grid level, the value count does
/// not match the node count, or `config.surrogate_samples == 0`.
pub fn run_sscm_on_grid(grid: &SparseGrid, config: &SscmConfig, node_values: &[f64]) -> SscmResult {
    assert_eq!(
        config.order,
        grid.level(),
        "chaos order must match the sparse-grid level"
    );
    assert_eq!(
        node_values.len(),
        grid.len(),
        "one model value per sparse-grid node is required"
    );
    assert!(
        config.surrogate_samples > 0,
        "surrogate sample count must be positive"
    );
    let dimension = grid.dimension();
    let values = node_values;

    // Galerkin projection by discrete quadrature:
    // c_α = E[Q Ψ_α] / E[Ψ_α²] ≈ Σ_k w_k Q(ξ_k) Ψ_α(ξ_k) / E[Ψ_α²].
    let basis = multi_indices(dimension, config.order);
    let mut coefficients = Vec::with_capacity(basis.len());
    for alpha in &basis {
        let mut projection = 0.0;
        for (node, &q) in grid.nodes().iter().zip(values) {
            projection += node.weight * q * alpha.evaluate(&node.point);
        }
        coefficients.push(projection / alpha.norm_squared());
    }
    let surrogate = PceSurrogate::new(basis, coefficients);

    // Sample the (cheap) surrogate to obtain the output CDF.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut samples = Vec::with_capacity(config.surrogate_samples);
    let mut xi = vec![0.0; dimension];
    for _ in 0..config.surrogate_samples {
        for x in xi.iter_mut() {
            let u1: f64 = rng.gen::<f64>().max(1e-300);
            let u2: f64 = rng.gen();
            *x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
        samples.push(surrogate.evaluate(&xi));
    }

    SscmResult {
        surrogate,
        evaluations: grid.len(),
        order: config.order,
        cdf: EmpiricalCdf::from_samples(&samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::{run_monte_carlo, MonteCarloConfig};

    fn quadratic_model(x: &[f64]) -> f64 {
        // A benign nonlinear model with known moments:
        // Q = 1 + 0.4 ξ0 − 0.25 ξ1 + 0.1 ξ0² + 0.05 ξ0 ξ2
        // mean = 1 + 0.1·E[ξ0²] = 1.1
        // var  = 0.16 + 0.0625 + 0.01·2 + 0.0025 = 0.245
        1.0 + 0.4 * x[0] - 0.25 * x[1] + 0.1 * x[0] * x[0] + 0.05 * x[0] * x[2]
    }

    #[test]
    fn second_order_sscm_is_exact_for_quadratic_models() {
        let config = SscmConfig {
            order: 2,
            surrogate_samples: 5000,
            seed: 1,
        };
        let result = run_sscm(3, &config, quadratic_model);
        assert!(
            (result.mean() - 1.1).abs() < 1e-10,
            "mean = {}",
            result.mean()
        );
        assert!(
            (result.variance() - 0.245).abs() < 1e-10,
            "variance = {}",
            result.variance()
        );
        assert_eq!(result.order(), 2);
        // 2nd-order grid in 3 dimensions: 2·9 + 4·3 + 1 = 31 nodes.
        assert_eq!(result.evaluations(), 31);
    }

    #[test]
    fn first_order_sscm_captures_the_linear_part() {
        let config = SscmConfig {
            order: 1,
            surrogate_samples: 2000,
            seed: 1,
        };
        let result = run_sscm(3, &config, quadratic_model);
        // Level-1 Gauss-Hermite nodes integrate E[ξ²] exactly, so even the
        // 1st-order run recovers the exact mean here; the variance misses the
        // quadratic contribution (0.245 vs 0.2225 exact linear part + eps).
        assert!((result.mean() - 1.1).abs() < 1e-9);
        assert!(result.variance() < 0.245);
        assert!(result.variance() > 0.2);
        // Level-1 grids have 2M + 1 nodes except in dimension 3, where the
        // origin's Smolyak weight cancels exactly and the node is dropped.
        assert_eq!(result.evaluations(), 6);
    }

    #[test]
    fn sscm_matches_monte_carlo_with_far_fewer_evaluations() {
        // The Table-I claim in miniature.
        let sscm = run_sscm(
            4,
            &SscmConfig {
                order: 2,
                surrogate_samples: 30_000,
                seed: 2,
            },
            |x| (0.3 * x[0] + 0.2 * x[1] - 0.1 * x[3]).exp(),
        );
        let mc = run_monte_carlo(
            4,
            &MonteCarloConfig {
                samples: 30_000,
                seed: 3,
            },
            |x| (0.3 * x[0] + 0.2 * x[1] - 0.1 * x[3]).exp(),
        );
        let exact_mean = (0.5f64 * (0.09 + 0.04 + 0.01)).exp();
        assert!(
            (sscm.mean() - exact_mean).abs() < 5e-3,
            "sscm {}",
            sscm.mean()
        );
        assert!((mc.mean() - exact_mean).abs() < 1e-2, "mc {}", mc.mean());
        assert!(sscm.evaluations() * 100 < mc.evaluations());
        // The two CDFs describe the same distribution.
        let ks = sscm.cdf().ks_distance(mc.cdf());
        assert!(ks < 0.05, "KS distance = {ks}");
    }

    #[test]
    fn surrogate_cdf_is_consistent_with_its_moments() {
        let result = run_sscm(
            2,
            &SscmConfig {
                order: 2,
                surrogate_samples: 50_000,
                seed: 9,
            },
            |x| 2.0 + x[0] + 0.5 * x[1],
        );
        // Median of a Gaussian equals its mean.
        assert!((result.cdf().quantile(0.5) - result.mean()).abs() < 0.03);
        // ~68% of samples within one standard deviation.
        let lo = result.mean() - result.std_dev();
        let hi = result.mean() + result.std_dev();
        let mass = result.cdf().evaluate(hi) - result.cdf().evaluate(lo);
        assert!((mass - 0.683).abs() < 0.02, "mass = {mass}");
    }

    #[test]
    #[should_panic(expected = "chaos order must be positive")]
    fn zero_order_panics() {
        let _ = run_sscm(
            2,
            &SscmConfig {
                order: 0,
                surrogate_samples: 10,
                seed: 0,
            },
            |_| 0.0,
        );
    }
}
