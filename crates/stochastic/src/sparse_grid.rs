//! Smolyak sparse-grid quadrature over Gaussian germs.
//!
//! Tensorizing an `n`-point rule over `M` KL germs costs `n^M` model solves —
//! hopeless for the M ≈ 10–20 dimensions of the surface expansion. The Smolyak
//! construction combines low-order tensor products so that the number of nodes
//! grows only polynomially with `M` while retaining the accuracy needed for a
//! second-order chaos projection. The node counts of this construction are the
//! "number of sampling points" the paper reports in Table I (33/345 for the
//! Gaussian CF, 39/462 for the extracted CF, versus 5000 Monte-Carlo samples).
//!
//! The 1D building block is the Gauss–Hermite family with `1, 3, 5, …` points
//! per level; nodes are merged across component grids by value so shared points
//! (notably the origin) are evaluated once.

use rough_numerics::quadrature::gauss_hermite_probabilists;
use std::collections::HashMap;

/// One node of a sparse quadrature rule: a location in germ space and its
/// (possibly negative) combined weight.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseNode {
    /// Germ-space coordinates (length = dimension).
    pub point: Vec<f64>,
    /// Quadrature weight.
    pub weight: f64,
}

/// A Smolyak sparse quadrature rule for expectations over independent standard
/// normal variables.
///
/// # Example
///
/// ```
/// use rough_stochastic::sparse_grid::SparseGrid;
/// let grid = SparseGrid::new(4, 1);
/// // Level-1 grids in M dimensions have 2M + 1 nodes.
/// assert_eq!(grid.len(), 9);
/// // Expectation of a linear function is exact.
/// let mean = grid.integrate(|x| 1.0 + 2.0 * x[0] - x[3]);
/// assert!((mean - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseGrid {
    dimension: usize,
    level: usize,
    nodes: Vec<SparseNode>,
}

impl SparseGrid {
    /// Builds the sparse grid of the given accuracy `level` (1 ⇒ exact for
    /// total polynomial order ≤ 2·1+1 ≈ the 1st-order SSCM of the paper,
    /// 2 ⇒ the 2nd-order SSCM) in `dimension` germ directions.
    ///
    /// # Panics
    ///
    /// Panics if `dimension == 0` or `level == 0`.
    pub fn new(dimension: usize, level: usize) -> Self {
        assert!(dimension > 0, "dimension must be positive");
        assert!(level > 0, "level must be positive");
        // Smolyak: A(q, d) = Σ_{q-d+1 ≤ |i| ≤ q} (-1)^{q-|i|} C(d-1, q-|i|) ⊗ U_{i_k}
        // with q = d + level. 1D levels use 2·i − 1 Gauss–Hermite points.
        let d = dimension;
        let q = d + level;
        let mut accumulator: HashMap<Vec<i64>, f64> = HashMap::new();

        let mut index = vec![1usize; d];
        loop {
            let total: usize = index.iter().sum();
            if total > q.saturating_sub(d) && total <= q {
                let excess = q - total;
                let coeff = smolyak_coefficient(d, excess);
                if coeff != 0.0 {
                    accumulate_tensor(&index, coeff, &mut accumulator);
                }
            }
            // Advance the multi-index (odometer) within 1..=level+? bounds:
            // component levels can be at most `level` above 1 jointly, but a
            // simple bound of `q - d + 1` per component is safe.
            let max_component = q - d + 1;
            let mut pos = 0;
            loop {
                if pos == d {
                    break;
                }
                index[pos] += 1;
                if index[pos] <= max_component && index.iter().sum::<usize>() <= q {
                    break;
                }
                index[pos] = 1;
                pos += 1;
            }
            if pos == d {
                break;
            }
        }

        let mut nodes: Vec<SparseNode> = accumulator
            .into_iter()
            .filter(|(_, w)| w.abs() > 1e-14)
            .map(|(key, weight)| SparseNode {
                point: key.iter().map(|&k| k as f64 * KEY_SCALE_INV).collect(),
                weight,
            })
            .collect();
        nodes.sort_by(|a, b| {
            a.point
                .partial_cmp(&b.point)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Self {
            dimension,
            level,
            nodes,
        }
    }

    /// Number of quadrature nodes (model evaluations needed).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the grid has no nodes (never the case for a
    /// constructed grid).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Germ-space dimension.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Smolyak accuracy level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The quadrature nodes.
    pub fn nodes(&self) -> &[SparseNode] {
        &self.nodes
    }

    /// Approximates `E[f(ξ)]` for `ξ ~ N(0, I)`.
    pub fn integrate(&self, mut f: impl FnMut(&[f64]) -> f64) -> f64 {
        self.nodes
            .iter()
            .map(|node| node.weight * f(&node.point))
            .sum()
    }
}

/// Fixed-point key scale used to merge floating-point nodes exactly.
const KEY_SCALE: f64 = 1.0e12;
const KEY_SCALE_INV: f64 = 1.0e-12;

fn smolyak_coefficient(d: usize, excess: usize) -> f64 {
    // (-1)^excess * C(d-1, excess)
    if excess > d - 1 {
        return 0.0;
    }
    let sign = if excess.is_multiple_of(2) { 1.0 } else { -1.0 };
    sign * binomial(d - 1, excess)
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

fn accumulate_tensor(index: &[usize], coeff: f64, accumulator: &mut HashMap<Vec<i64>, f64>) {
    // 1D rules: level i uses 2i − 1 Gauss–Hermite points.
    let rules: Vec<_> = index
        .iter()
        .map(|&i| gauss_hermite_probabilists(2 * i - 1))
        .collect();
    let mut counters = vec![0usize; index.len()];
    loop {
        let mut key = Vec::with_capacity(index.len());
        let mut weight = coeff;
        for (dim, &c) in counters.iter().enumerate() {
            let node = rules[dim].nodes()[c];
            weight *= rules[dim].weights()[c];
            key.push((node * KEY_SCALE).round() as i64);
        }
        *accumulator.entry(key).or_insert(0.0) += weight;

        // Odometer increment over the tensor product.
        let mut pos = 0;
        loop {
            if pos == counters.len() {
                return;
            }
            counters[pos] += 1;
            if counters[pos] < rules[pos].len() {
                break;
            }
            counters[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts_match_known_formulas() {
        // Level 1: 2M + 1 nodes; the paper's 1st-order SSCM column.
        for m in [2usize, 5, 10, 16, 19] {
            let grid = SparseGrid::new(m, 1);
            assert_eq!(grid.len(), 2 * m + 1, "level-1 count for M = {m}");
        }
        // Level 2 with the (non-nested) Gauss–Hermite family: the 3-point and
        // 5-point rules only share the origin, giving 2M² + 4M + 1 nodes.
        for m in [2usize, 5, 8, 12] {
            let grid = SparseGrid::new(m, 2);
            assert_eq!(
                grid.len(),
                2 * m * m + 4 * m + 1,
                "level-2 count for M = {m}"
            );
        }
    }

    #[test]
    fn table1_order_of_magnitude() {
        // With M ≈ 16 germs the 1st/2nd-order SSCM grids have ~33 and ~545
        // nodes — an order of magnitude fewer than the 5000 MC samples of
        // Table I, which is the claim the experiment reproduces.
        let m = 16;
        assert_eq!(SparseGrid::new(m, 1).len(), 33);
        assert!(SparseGrid::new(m, 2).len() < 600);
    }

    #[test]
    fn weights_sum_to_one() {
        for (m, level) in [(3usize, 1usize), (6, 1), (4, 2), (7, 2)] {
            let grid = SparseGrid::new(m, level);
            let sum: f64 = grid.nodes().iter().map(|n| n.weight).sum();
            assert!((sum - 1.0).abs() < 1e-10, "M = {m}, level = {level}: {sum}");
        }
    }

    #[test]
    fn integrates_polynomials_exactly() {
        let grid = SparseGrid::new(5, 2);
        // Constant, first, and second moments of independent N(0,1).
        assert!((grid.integrate(|_| 1.0) - 1.0).abs() < 1e-10);
        assert!(grid.integrate(|x| x[2]).abs() < 1e-10);
        assert!((grid.integrate(|x| x[1] * x[1]) - 1.0).abs() < 1e-9);
        assert!(grid.integrate(|x| x[0] * x[3]).abs() < 1e-9);
        // Mixed fourth-order monomial of two distinct germs is also captured
        // at level 2: E[x0² x4²] = 1.
        assert!((grid.integrate(|x| x[0] * x[0] * x[4] * x[4]) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn level2_captures_quartic_in_single_direction() {
        let grid = SparseGrid::new(3, 2);
        // E[x^4] = 3 requires the 5-point 1D rule that level 2 includes.
        assert!((grid.integrate(|x| x[0].powi(4)) - 3.0).abs() < 1e-8);
    }

    #[test]
    fn gaussian_expectation_accuracy_improves_with_level() {
        // E[exp(0.3 Σ ξ_i)] = exp(0.045 M) for M germs.
        let m = 4;
        let exact = (0.045f64 * m as f64).exp();
        let err1 = (SparseGrid::new(m, 1).integrate(|x| (0.3 * x.iter().sum::<f64>()).exp())
            - exact)
            .abs();
        let err2 = (SparseGrid::new(m, 2).integrate(|x| (0.3 * x.iter().sum::<f64>()).exp())
            - exact)
            .abs();
        assert!(err2 < err1, "err1 = {err1}, err2 = {err2}");
        assert!(err2 < 1e-3);
    }

    #[test]
    fn origin_is_a_node_with_large_weight() {
        let grid = SparseGrid::new(6, 1);
        let origin = grid
            .nodes()
            .iter()
            .find(|n| n.point.iter().all(|&x| x.abs() < 1e-12))
            .expect("origin node present");
        assert!(origin.weight.abs() > 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dimension_panics() {
        let _ = SparseGrid::new(0, 1);
    }
}
