//! Multivariate Hermite polynomial chaos (the Homogeneous Chaos of Wiener).
//!
//! For independent standard-normal germs `ξ = (ξ₁, …, ξ_M)` the solution is
//! expanded as `Q(ξ) = Σ_α c_α Ψ_α(ξ)` where `Ψ_α(ξ) = Π_i He_{α_i}(ξ_i)` are
//! products of *probabilists'* Hermite polynomials and the multi-indices α run
//! over `|α| ≤ p` (total order `p`; the paper's 1st- and 2nd-order SSCM are
//! `p = 1` and `p = 2`). The `Ψ_α` are orthogonal under the Gaussian measure
//! with `E[Ψ_α²] = Π_i α_i!`, which makes both the projection and the moment
//! extraction trivial.

/// Evaluates the probabilists' Hermite polynomial `He_n(x)`.
///
/// # Example
///
/// ```
/// use rough_stochastic::pce::hermite;
/// assert_eq!(hermite(0, 1.7), 1.0);
/// assert_eq!(hermite(1, 1.7), 1.7);
/// assert!((hermite(2, 2.0) - 3.0).abs() < 1e-12); // x² − 1
/// assert!((hermite(3, 2.0) - 2.0).abs() < 1e-12); // x³ − 3x
/// ```
pub fn hermite(order: usize, x: f64) -> f64 {
    match order {
        0 => 1.0,
        1 => x,
        _ => {
            let mut h_prev = 1.0;
            let mut h = x;
            for n in 1..order {
                let next = x * h - n as f64 * h_prev;
                h_prev = h;
                h = next;
            }
            h
        }
    }
}

/// A multi-index `α` labelling one multivariate Hermite basis function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MultiIndex(pub Vec<usize>);

impl MultiIndex {
    /// Total order `|α| = Σ α_i`.
    pub fn total_order(&self) -> usize {
        self.0.iter().sum()
    }

    /// Evaluates the basis function `Ψ_α(ξ) = Π He_{α_i}(ξ_i)`.
    ///
    /// # Panics
    ///
    /// Panics if `xi.len()` differs from the index dimension.
    pub fn evaluate(&self, xi: &[f64]) -> f64 {
        assert_eq!(xi.len(), self.0.len(), "germ dimension mismatch");
        self.0
            .iter()
            .zip(xi)
            .map(|(&order, &x)| hermite(order, x))
            .product()
    }

    /// Norm squared `E[Ψ_α²] = Π α_i!`.
    pub fn norm_squared(&self) -> f64 {
        self.0.iter().map(|&a| factorial(a)).product()
    }
}

fn factorial(n: usize) -> f64 {
    (1..=n).map(|k| k as f64).product()
}

/// Generates all multi-indices of dimension `dim` with total order `≤ order`,
/// sorted by total order (constant term first).
pub fn multi_indices(dim: usize, order: usize) -> Vec<MultiIndex> {
    let mut out = Vec::new();
    let mut current = vec![0usize; dim];
    collect_indices(dim, 0, order, &mut current, &mut out);
    out.sort_by_key(|a| a.total_order());
    out
}

fn collect_indices(
    dim: usize,
    position: usize,
    remaining: usize,
    current: &mut Vec<usize>,
    out: &mut Vec<MultiIndex>,
) {
    if position == dim {
        out.push(MultiIndex(current.clone()));
        return;
    }
    for value in 0..=remaining {
        current[position] = value;
        collect_indices(dim, position + 1, remaining - value, current, out);
    }
    current[position] = 0;
}

/// Number of polynomial-chaos terms for `dim` germs and total order `order`:
/// `(dim + order)! / (dim!·order!)`.
pub fn basis_size(dim: usize, order: usize) -> usize {
    let mut numerator = 1.0;
    for k in 1..=order {
        numerator *= (dim + k) as f64 / k as f64;
    }
    numerator.round() as usize
}

/// A polynomial-chaos surrogate `Q(ξ) ≈ Σ c_α Ψ_α(ξ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PceSurrogate {
    indices: Vec<MultiIndex>,
    coefficients: Vec<f64>,
}

impl PceSurrogate {
    /// Creates a surrogate from basis indices and matching coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or the basis is empty.
    pub fn new(indices: Vec<MultiIndex>, coefficients: Vec<f64>) -> Self {
        assert_eq!(
            indices.len(),
            coefficients.len(),
            "basis/coefficient mismatch"
        );
        assert!(
            !indices.is_empty(),
            "surrogate needs at least the constant term"
        );
        Self {
            indices,
            coefficients,
        }
    }

    /// Evaluates the surrogate at a germ vector.
    pub fn evaluate(&self, xi: &[f64]) -> f64 {
        self.indices
            .iter()
            .zip(&self.coefficients)
            .map(|(a, &c)| c * a.evaluate(xi))
            .sum()
    }

    /// Mean of the surrogate (the coefficient of the constant term).
    pub fn mean(&self) -> f64 {
        self.indices
            .iter()
            .zip(&self.coefficients)
            .find(|(a, _)| a.total_order() == 0)
            .map(|(_, &c)| c)
            .unwrap_or(0.0)
    }

    /// Variance of the surrogate: `Σ_{|α|>0} c_α² E[Ψ_α²]`.
    pub fn variance(&self) -> f64 {
        self.indices
            .iter()
            .zip(&self.coefficients)
            .filter(|(a, _)| a.total_order() > 0)
            .map(|(a, &c)| c * c * a.norm_squared())
            .sum()
    }

    /// The basis multi-indices.
    pub fn indices(&self) -> &[MultiIndex] {
        &self.indices
    }

    /// The chaos coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rough_numerics::quadrature::gauss_hermite_probabilists;

    #[test]
    fn hermite_recurrence_matches_known_polynomials() {
        let x = 1.3;
        assert!((hermite(2, x) - (x * x - 1.0)).abs() < 1e-12);
        assert!((hermite(3, x) - (x * x * x - 3.0 * x)).abs() < 1e-12);
        assert!((hermite(4, x) - (x.powi(4) - 6.0 * x * x + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn hermite_orthogonality_under_gaussian_weight() {
        let rule = gauss_hermite_probabilists(12);
        for m in 0..5usize {
            for n in 0..5usize {
                let inner = rule.integrate(|x| hermite(m, x) * hermite(n, x));
                let expected = if m == n { factorial(m) } else { 0.0 };
                assert!(
                    (inner - expected).abs() < 1e-8,
                    "<He{m}, He{n}> = {inner}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn multi_index_enumeration_counts() {
        assert_eq!(multi_indices(3, 0).len(), 1);
        assert_eq!(multi_indices(3, 1).len(), 4); // 1 + 3
        assert_eq!(multi_indices(3, 2).len(), 10); // (3+2)!/(3!2!)
        assert_eq!(multi_indices(5, 2).len(), basis_size(5, 2));
        assert_eq!(basis_size(10, 2), 66);
        // Sorted by total order, constant first.
        let idx = multi_indices(2, 2);
        assert_eq!(idx[0].total_order(), 0);
        assert!(idx
            .windows(2)
            .all(|w| w[0].total_order() <= w[1].total_order()));
    }

    #[test]
    fn multi_index_evaluation_and_norm() {
        let a = MultiIndex(vec![2, 0, 1]);
        let xi = [1.5, -0.3, 0.7];
        let expected = hermite(2, 1.5) * hermite(0, -0.3) * hermite(1, 0.7);
        assert!((a.evaluate(&xi) - expected).abs() < 1e-13);
        assert!((a.norm_squared() - 2.0).abs() < 1e-13);
    }

    #[test]
    fn surrogate_moments_of_known_expansion() {
        // Q = 3 + 2 ξ1 + 0.5 (ξ2² − 1): mean 3, variance 4 + 0.25·2 = 4.5.
        let indices = vec![
            MultiIndex(vec![0, 0]),
            MultiIndex(vec![1, 0]),
            MultiIndex(vec![0, 2]),
        ];
        let surrogate = PceSurrogate::new(indices, vec![3.0, 2.0, 0.5]);
        assert!((surrogate.mean() - 3.0).abs() < 1e-14);
        assert!((surrogate.variance() - 4.5).abs() < 1e-14);
        let q = surrogate.evaluate(&[1.0, 2.0]);
        assert!((q - (3.0 + 2.0 + 0.5 * 3.0)).abs() < 1e-13);
    }

    proptest! {
        #[test]
        fn prop_hermite_parity(order in 0usize..8, x in -3.0f64..3.0) {
            let direct = hermite(order, x);
            let mirrored = hermite(order, -x);
            let sign = if order % 2 == 0 { 1.0 } else { -1.0 };
            prop_assert!((direct - sign * mirrored).abs() < 1e-9 * (1.0 + direct.abs()));
        }
    }
}
