//! Monte-Carlo estimation of the loss-enhancement statistics.
//!
//! The reference the paper compares SSCM against: draw independent realizations
//! of the KL germ vector, evaluate the deterministic model (one full SWM solve
//! per sample) and accumulate the mean and the empirical CDF. Convergence needs
//! thousands of samples (paper Table I quotes 5000 for 1 % accuracy), which is
//! exactly the cost SSCM avoids.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rough_numerics::stats::{summarize, EmpiricalCdf, Summary};

/// Configuration of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of samples to draw.
    pub samples: usize,
    /// RNG seed (runs are fully reproducible).
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self {
            samples: 200,
            seed: 0x5EED,
        }
    }
}

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct MonteCarloResult {
    summary: Summary,
    cdf: EmpiricalCdf,
    evaluations: usize,
}

impl MonteCarloResult {
    /// Builds the result directly from externally evaluated sample values —
    /// the batch entry point used by `rough-engine`, whose executor evaluates
    /// the realizations in parallel and hands the ordered values back.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_samples(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "at least one sample is required");
        Self {
            summary: summarize(values),
            cdf: EmpiricalCdf::from_samples(values),
            evaluations: values.len(),
        }
    }

    /// Summary statistics of the sampled quantity of interest.
    pub fn summary(&self) -> Summary {
        self.summary
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.summary.mean
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.summary.std_dev()
    }

    /// Empirical cumulative distribution function of the samples.
    pub fn cdf(&self) -> &EmpiricalCdf {
        &self.cdf
    }

    /// Number of model evaluations performed (equals the sample count).
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// Runs a Monte-Carlo estimation of `E[model(ξ)]` for a model driven by
/// `dimension` independent standard-normal germs.
///
/// The model closure receives one germ vector per call and returns the scalar
/// quantity of interest (here: the loss-enhancement factor of the surface
/// realization synthesized from those germs).
///
/// # Panics
///
/// Panics if `config.samples == 0` or `dimension == 0`.
pub fn run_monte_carlo(
    dimension: usize,
    config: &MonteCarloConfig,
    mut model: impl FnMut(&[f64]) -> f64,
) -> MonteCarloResult {
    run_monte_carlo_with(dimension, config, |germs| {
        germs.iter().map(|xi| model(xi)).collect()
    })
}

/// Batch variant of [`run_monte_carlo`]: the germ matrix is drawn up front and
/// handed to `evaluate_all`, which returns one value per germ vector (in
/// order). This is the engine-backed entry point — `rough-engine` supplies an
/// `evaluate_all` that fans the evaluations out over a thread pool, which
/// keeps the statistics bit-identical to the serial path for a fixed seed.
///
/// # Panics
///
/// Panics if `config.samples == 0`, `dimension == 0`, or `evaluate_all`
/// returns a wrong number of values.
pub fn run_monte_carlo_with(
    dimension: usize,
    config: &MonteCarloConfig,
    evaluate_all: impl FnOnce(&[Vec<f64>]) -> Vec<f64>,
) -> MonteCarloResult {
    let germs = draw_germ_matrix(dimension, config.samples, config.seed);
    let values = evaluate_all(&germs);
    assert_eq!(
        values.len(),
        config.samples,
        "evaluate_all must return one value per sample"
    );
    MonteCarloResult::from_samples(&values)
}

/// Draws the `samples × dimension` matrix of independent standard-normal
/// germ vectors that [`run_monte_carlo`] evaluates, in evaluation order.
///
/// Exposed so batch executors can plan the exact same realizations the serial
/// driver would visit and distribute them across workers.
///
/// # Panics
///
/// Panics if `samples == 0` or `dimension == 0`.
pub fn draw_germ_matrix(dimension: usize, samples: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(samples > 0, "at least one sample is required");
    assert!(dimension > 0, "germ dimension must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..samples)
        .map(|_| (0..dimension).map(|_| standard_normal(&mut rng)).collect())
        .collect()
}

/// Draws one standard-normal variate via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_and_correct_count() {
        let config = MonteCarloConfig {
            samples: 500,
            seed: 7,
        };
        let a = run_monte_carlo(3, &config, |x| x.iter().sum::<f64>());
        let b = run_monte_carlo(3, &config, |x| x.iter().sum::<f64>());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.evaluations(), 500);
    }

    #[test]
    fn estimates_mean_and_variance_of_linear_model() {
        // Q = 2 + 3 ξ0 − ξ1: mean 2, variance 10.
        let config = MonteCarloConfig {
            samples: 20_000,
            seed: 11,
        };
        let result = run_monte_carlo(2, &config, |x| 2.0 + 3.0 * x[0] - x[1]);
        assert!(
            (result.mean() - 2.0).abs() < 0.05,
            "mean = {}",
            result.mean()
        );
        assert!(
            (result.summary().variance - 10.0).abs() < 0.4,
            "var = {}",
            result.summary().variance
        );
        // CDF median is close to the mean for a symmetric distribution.
        assert!((result.cdf().quantile(0.5) - 2.0).abs() < 0.1);
    }

    #[test]
    fn cdf_of_nonlinear_model_is_monotone_and_bounded() {
        let config = MonteCarloConfig {
            samples: 2_000,
            seed: 3,
        };
        let result = run_monte_carlo(4, &config, |x| 1.0 + x.iter().map(|v| v * v).sum::<f64>());
        let cdf = result.cdf();
        assert_eq!(cdf.evaluate(0.99), 0.0); // Q >= 1 always
        assert_eq!(cdf.evaluate(1e9), 1.0);
        assert!(result.mean() > 4.5 && result.mean() < 5.5); // E[Q] = 1 + 4
    }

    #[test]
    fn error_shrinks_with_sample_count() {
        let small = run_monte_carlo(
            1,
            &MonteCarloConfig {
                samples: 100,
                seed: 1,
            },
            |x| x[0],
        );
        let large = run_monte_carlo(
            1,
            &MonteCarloConfig {
                samples: 40_000,
                seed: 1,
            },
            |x| x[0],
        );
        assert!(large.mean().abs() < small.mean().abs() + 0.05);
        assert!(large.summary().std_error() < small.summary().std_error());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        run_monte_carlo(
            1,
            &MonteCarloConfig {
                samples: 0,
                seed: 0,
            },
            |_| 0.0,
        );
    }
}
