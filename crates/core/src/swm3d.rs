//! High-level 3D SWM problem: configuration, surface sampling and solution.
//!
//! [`SwmProblem`] bundles the material stack, the roughness specification, the
//! frequency and the discretization, and produces the loss-enhancement factor
//! `Pr/Ps` for individual surface realizations. The stochastic drivers
//! (Monte-Carlo, SSCM) call [`SwmProblem::solve_with_reference`] repeatedly
//! with surfaces synthesized from the same specification.

use crate::assembly3d::assemble_system_with;
use crate::error::SwmError;
use crate::loss::LossResult;
use crate::matrixfree::{MatrixFreeOperator, MfTableCache, OperatorRepr};
use crate::mesh::PatchMesh;
use crate::nearfield::{AssemblyScheme, KernelEval};
use crate::parallel::AssemblyParallelism;
use crate::power::{absorbed_power_3d, smooth_surface_power};
use crate::solver::{
    krylov_config, solve_operator_configured, solve_system, strategy_label, SolveDiagnostics,
    SolveStats, SolverKind,
};
use crate::spec::RoughnessSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rough_em::fresnel::flat_interface;
use rough_em::green::PeriodicGreen3d;
use rough_em::material::Stackup;
use rough_em::units::Frequency;
use rough_numerics::complex::c64;
use rough_surface::generation::kl::KarhunenLoeve;
use rough_surface::generation::spectral::SpectralSurfaceGenerator;
use rough_surface::RoughSurface;

/// A fully configured 3D scalar-wave-modeling problem.
///
/// # Example
///
/// ```
/// use rough_core::{RoughnessSpec, SwmProblem};
/// use rough_em::material::Stackup;
/// use rough_em::units::{GigaHertz, Micrometers};
///
/// # fn main() -> Result<(), rough_core::SwmError> {
/// let problem = SwmProblem::builder(
///     Stackup::paper_baseline(),
///     RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0)),
/// )
/// .frequency(GigaHertz::new(5.0).into())
/// .cells_per_side(6)
/// .build()?;
/// let surface = problem.sample_surface(1);
/// let result = problem.solve(&surface)?;
/// // The coarse 6×6 demo grid carries a small low bias, so individual
/// // realizations are only guaranteed to clear 0.9.
/// assert!(result.enhancement_factor() > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SwmProblem {
    stack: Stackup,
    roughness: RoughnessSpec,
    frequency: Frequency,
    cells_per_side: usize,
    solver: SolverKind,
    assembly: AssemblyScheme,
    kernel_eval: KernelEval,
    operator_repr: OperatorRepr,
    assembly_parallelism: AssemblyParallelism,
}

/// Frequency-level operator state of a [`SwmProblem`]: the two Ewald-summed
/// doubly-periodic Green's functions and the boundary-condition contrast.
///
/// Building it is cheap, but sharing one instance across a batch keeps every
/// realization of a campaign on identical kernel tables and makes the sharing
/// explicit — batch drivers key their kernel caches on the
/// (stackup, frequency, grid) triple that determines this value.
#[derive(Debug, Clone)]
pub struct SwmOperator {
    g1: PeriodicGreen3d,
    g2: PeriodicGreen3d,
    beta: c64,
    k1: c64,
    assembly: AssemblyScheme,
    kernel_eval: KernelEval,
    operator_repr: OperatorRepr,
    table_cache: Option<std::sync::Arc<MfTableCache>>,
}

impl SwmOperator {
    /// Kernel of the dielectric half-space (wavenumber `k₁`).
    pub fn green_dielectric(&self) -> &PeriodicGreen3d {
        &self.g1
    }

    /// Kernel of the conductor half-space (wavenumber `k₂`).
    pub fn green_conductor(&self) -> &PeriodicGreen3d {
        &self.g2
    }

    /// The assembly scheme every solve through this operator uses.
    pub fn assembly(&self) -> AssemblyScheme {
        self.assembly
    }

    /// The kernel evaluation strategy every solve through this operator uses.
    pub fn kernel_eval(&self) -> KernelEval {
        self.kernel_eval
    }

    /// The operator representation (dense or matrix-free) every solve through
    /// this operator uses.
    pub fn operator_repr(&self) -> OperatorRepr {
        self.operator_repr
    }

    /// Boundary-condition contrast `β` of eq. (9).
    pub fn beta(&self) -> c64 {
        self.beta
    }

    /// Incident (dielectric) wavenumber `k₁`.
    pub fn k1(&self) -> c64 {
        self.k1
    }

    /// Returns this operator with matrix-free generator-table builds routed
    /// through a shared [`MfTableCache`]. A no-op for dense solves; for
    /// matrix-free solves results stay bit-identical (hits return tables
    /// byte-identical to a fresh build). The batch engine installs its
    /// kernel cache's instance here so sweeps and repeated runs amortize the
    /// tables.
    pub fn with_table_cache(mut self, cache: std::sync::Arc<MfTableCache>) -> Self {
        self.table_cache = Some(cache);
        self
    }

    /// The shared generator-table cache, when one is installed.
    pub fn table_cache(&self) -> Option<&std::sync::Arc<MfTableCache>> {
        self.table_cache.as_ref()
    }
}

/// Builder for [`SwmProblem`].
#[derive(Debug, Clone)]
pub struct SwmProblemBuilder {
    stack: Stackup,
    roughness: RoughnessSpec,
    frequency: Option<Frequency>,
    cells_per_side: usize,
    solver: SolverKind,
    assembly: AssemblyScheme,
    kernel_eval: KernelEval,
    operator_repr: OperatorRepr,
    assembly_parallelism: AssemblyParallelism,
}

impl SwmProblem {
    /// Starts building a problem for a material stack and roughness
    /// specification.
    pub fn builder(stack: Stackup, roughness: RoughnessSpec) -> SwmProblemBuilder {
        SwmProblemBuilder {
            stack,
            roughness,
            frequency: None,
            cells_per_side: 16,
            solver: SolverKind::DirectLu,
            assembly: AssemblyScheme::default(),
            kernel_eval: KernelEval::default(),
            operator_repr: OperatorRepr::default(),
            assembly_parallelism: AssemblyParallelism::default(),
        }
    }

    /// Material stack (dielectric over conductor).
    pub fn stack(&self) -> &Stackup {
        &self.stack
    }

    /// Roughness specification.
    pub fn roughness(&self) -> &RoughnessSpec {
        &self.roughness
    }

    /// Simulation frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Cells per side of the periodic patch.
    pub fn cells_per_side(&self) -> usize {
        self.cells_per_side
    }

    /// Near-field assembly scheme.
    pub fn assembly(&self) -> AssemblyScheme {
        self.assembly
    }

    /// Kernel evaluation strategy (batched row panels by default).
    pub fn kernel_eval(&self) -> KernelEval {
        self.kernel_eval
    }

    /// Operator representation used for the solve (dense by default).
    pub fn operator_repr(&self) -> OperatorRepr {
        self.operator_repr
    }

    /// Intra-solve assembly parallelism (serial by default).
    pub fn assembly_parallelism(&self) -> AssemblyParallelism {
        self.assembly_parallelism
    }

    /// Returns a problem identical to this one with a different intra-solve
    /// assembly parallelism. Results are bit-identical at any worker count;
    /// the batch engine uses this to fit each solve into its core budget
    /// without invalidating cached operators.
    pub fn with_assembly_parallelism(&self, parallelism: AssemblyParallelism) -> Self {
        let mut p = self.clone();
        p.assembly_parallelism = parallelism;
        p
    }

    /// Side length of the periodic patch (m).
    pub fn patch_length(&self) -> f64 {
        self.roughness.patch_length()
    }

    /// Returns a problem identical to this one at a different frequency
    /// (used by frequency sweeps).
    pub fn at_frequency(&self, frequency: Frequency) -> Self {
        let mut p = self.clone();
        p.frequency = frequency;
        p
    }

    /// Samples one surface realization from the stochastic specification.
    ///
    /// Power-of-two grids use the FFT spectral synthesis; other grid sizes fall
    /// back to the (slower to set up) Karhunen–Loève expansion.
    ///
    /// # Panics
    ///
    /// Panics if the roughness specification is deterministic (supply your own
    /// [`RoughSurface`] to [`SwmProblem::solve`] in that case).
    pub fn sample_surface(&self, seed: u64) -> RoughSurface {
        let cf = *self
            .roughness
            .correlation()
            .expect("sample_surface requires a stochastic roughness specification");
        let n = self.cells_per_side;
        let length = self.patch_length();
        let mut rng = StdRng::seed_from_u64(seed);
        if n.is_power_of_two() && n >= 4 {
            let generator =
                SpectralSurfaceGenerator::new(cf, n, length).expect("validated power-of-two grid");
            generator.generate(&mut rng)
        } else {
            let kl = KarhunenLoeve::new(cf, n, length, 0.995).expect("validated grid");
            kl.sample(&mut rng).1
        }
    }

    /// Samples a ridged (y-uniform) surface realization with the same 1D
    /// statistics — the "2D roughness" comparison case of Fig. 6.
    ///
    /// # Panics
    ///
    /// Panics if the specification is deterministic or the grid is not a power
    /// of two.
    pub fn sample_ridged_surface(&self, seed: u64) -> RoughSurface {
        let cf = *self
            .roughness
            .correlation()
            .expect("sample_ridged_surface requires a stochastic roughness specification");
        let generator = SpectralSurfaceGenerator::new(cf, self.cells_per_side, self.patch_length())
            .expect("ridged sampling requires a power-of-two grid");
        let mut rng = StdRng::seed_from_u64(seed);
        generator.generate_ridged(&mut rng)
    }

    /// Builds the frequency-level operator state — the two Ewald-summed
    /// periodic kernels and the boundary contrast — shared by every
    /// realization of this problem.
    ///
    /// Batch drivers (`rough-engine`) build this once per
    /// (stackup, frequency, patch) and reuse it across all realizations; the
    /// single-solve convenience methods build it on the fly.
    pub fn operator(&self) -> SwmOperator {
        SwmOperator {
            g1: PeriodicGreen3d::new(self.stack.k1(self.frequency), self.patch_length()),
            g2: PeriodicGreen3d::new(self.stack.k2(self.frequency), self.patch_length()),
            beta: self.stack.beta(self.frequency),
            k1: self.stack.k1(self.frequency),
            assembly: self.assembly,
            kernel_eval: self.kernel_eval,
            operator_repr: self.operator_repr,
            table_cache: None,
        }
    }

    /// Absorbed power `Pr` of one surface realization (paper eq. (10)) together
    /// with the linear-solve diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`SwmError::SurfaceMismatch`] if the surface grid does not match
    /// the problem configuration, or a solver error.
    pub fn absorbed_power(&self, surface: &RoughSurface) -> Result<(f64, SolveStats), SwmError> {
        self.absorbed_power_with(surface, &self.operator())
    }

    /// Absorbed power of one realization, reusing a pre-built
    /// [`SwmOperator`].
    ///
    /// # Errors
    ///
    /// Returns [`SwmError::SurfaceMismatch`] if the surface grid does not match
    /// the problem configuration, or a solver error.
    pub fn absorbed_power_with(
        &self,
        surface: &RoughSurface,
        operator: &SwmOperator,
    ) -> Result<(f64, SolveStats), SwmError> {
        let (power, stats, _) = self.absorbed_power_diagnosed(surface, operator)?;
        Ok((power, stats))
    }

    /// Assembles the dense system for `mesh` and solves it with `kind` — the
    /// dense solve path, shared between the `Dense` operator representation
    /// and the matrix-free ladder's final fallback so both produce bit-identical
    /// solutions.
    fn dense_solve(
        &self,
        mesh: &PatchMesh,
        operator: &SwmOperator,
        kind: SolverKind,
    ) -> Result<(Vec<c64>, SolveStats, usize), SwmError> {
        let system = assemble_system_with(
            mesh,
            &operator.g1,
            &operator.g2,
            operator.beta,
            operator.k1,
            operator.assembly,
            operator.kernel_eval,
            self.assembly_parallelism,
        );
        let (solution, stats) = solve_system(&system.matrix, &system.rhs, kind)?;
        Ok((solution, stats, system.surface_unknowns))
    }

    /// [`SwmProblem::absorbed_power_with`] plus the structured
    /// [`SolveDiagnostics`] of how the solution was obtained.
    ///
    /// For a matrix-free operator with a Krylov solver this is the graceful
    /// degradation ladder: when the configured iteration breaks down or fails
    /// to converge, the solve escalates to a tightened restarted GMRES
    /// (doubled restart length and iteration budget), and finally to the
    /// dense `DirectLu` path — bit-identical to a dense-representation solve
    /// of the same problem — rather than failing the unit. Every rung is
    /// recorded in the diagnostics, and any fallback marks the solve
    /// `degraded`.
    ///
    /// # Errors
    ///
    /// Returns [`SwmError::SurfaceMismatch`] on a mismatched surface grid,
    /// configuration errors, or a solver error when even the final dense
    /// fallback fails.
    pub fn absorbed_power_diagnosed(
        &self,
        surface: &RoughSurface,
        operator: &SwmOperator,
    ) -> Result<(f64, SolveStats, SolveDiagnostics), SwmError> {
        self.check_surface(surface)?;
        let mesh = PatchMesh::from_surface(surface);
        let mut diagnostics = SolveDiagnostics::default();
        let (solution, stats, n) = match operator.operator_repr {
            OperatorRepr::Dense => {
                let (solution, stats, n) = self.dense_solve(&mesh, operator, self.solver)?;
                diagnostics.push_ok(strategy_label(self.solver), stats);
                (solution, stats, n)
            }
            OperatorRepr::MatrixFree(mf_policy) => {
                let AssemblyScheme::LocallyCorrected(policy) = operator.assembly else {
                    return Err(SwmError::InvalidConfiguration(
                        "the matrix-free operator requires the locally corrected assembly scheme"
                            .into(),
                    ));
                };
                let mf = MatrixFreeOperator::assemble_with_cache(
                    &mesh,
                    &operator.g1,
                    &operator.g2,
                    operator.beta,
                    operator.k1,
                    policy,
                    mf_policy,
                    operator.kernel_eval,
                    self.assembly_parallelism,
                    operator.table_cache.as_deref(),
                );
                let precond = mf.preconditioner();
                let base = krylov_config(self.solver)?;
                match solve_operator_configured(&mf, mf.rhs(), self.solver, Some(&precond), &base) {
                    Ok((solution, stats)) => {
                        diagnostics.push_ok(strategy_label(self.solver), stats);
                        (solution, stats, mf.surface_unknowns())
                    }
                    Err(first) => {
                        diagnostics.push_failed(strategy_label(self.solver), &first);
                        // Rung 2: a longer GMRES recurrence with a doubled
                        // iteration budget — same tolerance, so a success
                        // here is as accurate as the configured solve.
                        let tight = base.tightened();
                        let retry = SolverKind::Gmres {
                            tolerance: tight.tolerance,
                            restart: tight.restart,
                        };
                        let label = format!(
                            "gmres-tightened(restart={},max_iter={})",
                            tight.restart, tight.max_iterations
                        );
                        match solve_operator_configured(
                            &mf,
                            mf.rhs(),
                            retry,
                            Some(&precond),
                            &tight,
                        ) {
                            Ok((solution, stats)) => {
                                diagnostics.push_ok(label, stats);
                                (solution, stats, mf.surface_unknowns())
                            }
                            Err(second) => {
                                diagnostics.push_failed(label, &second);
                                // Rung 3: the slower-but-sure dense direct
                                // path — exactly the Dense-representation
                                // code, so the recovered result is
                                // bit-identical to a clean dense solve.
                                let (solution, stats, n) =
                                    self.dense_solve(&mesh, operator, SolverKind::DirectLu)?;
                                diagnostics.push_ok("direct-lu-fallback", stats);
                                (solution, stats, n)
                            }
                        }
                    }
                }
            }
        };
        let power = absorbed_power_3d(&mesh, &solution[..n], &solution[n..]);
        Ok((power, stats, diagnostics))
    }

    /// Absorbed power of the flat (smooth) patch solved with the same grid and
    /// solver — the `Ps` reference of the enhancement factor.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn flat_reference_power(&self) -> Result<f64, SwmError> {
        let flat = RoughSurface::flat(self.cells_per_side, self.patch_length());
        let (power, _) = self.absorbed_power(&flat)?;
        Ok(power)
    }

    /// Analytic smooth-surface power `|T|²·L²/(2δ)` for cross-checking the
    /// numerical flat reference.
    pub fn analytic_smooth_power(&self) -> f64 {
        let sol = flat_interface(&self.stack, self.frequency);
        smooth_surface_power(
            self.patch_length() * self.patch_length(),
            self.stack.skin_depth(self.frequency).value(),
            sol.transmission.abs(),
        )
    }

    /// Solves the problem for one surface realization, computing the flat
    /// reference on the fly.
    ///
    /// When evaluating many realizations (Monte-Carlo, SSCM) compute the flat
    /// reference once with [`SwmProblem::flat_reference_power`] and use
    /// [`SwmProblem::solve_with_reference`] instead.
    ///
    /// # Errors
    ///
    /// Propagates surface-mismatch and solver errors.
    pub fn solve(&self, surface: &RoughSurface) -> Result<LossResult, SwmError> {
        let reference = self.flat_reference_power()?;
        self.solve_with_reference(surface, reference)
    }

    /// Solves the problem for one surface realization against a pre-computed
    /// flat reference power.
    ///
    /// # Errors
    ///
    /// Propagates surface-mismatch and solver errors.
    pub fn solve_with_reference(
        &self,
        surface: &RoughSurface,
        flat_reference: f64,
    ) -> Result<LossResult, SwmError> {
        self.solve_with_reference_using(surface, flat_reference, &self.operator())
    }

    /// Solves one realization against a pre-computed flat reference, reusing a
    /// pre-built [`SwmOperator`] — the hot path of batch campaigns.
    ///
    /// # Errors
    ///
    /// Propagates surface-mismatch and solver errors.
    pub fn solve_with_reference_using(
        &self,
        surface: &RoughSurface,
        flat_reference: f64,
        operator: &SwmOperator,
    ) -> Result<LossResult, SwmError> {
        let (loss, _) = self.solve_with_reference_diagnosed(surface, flat_reference, operator)?;
        Ok(loss)
    }

    /// [`SwmProblem::solve_with_reference_using`] plus the structured
    /// [`SolveDiagnostics`] of the escalation ladder. The returned
    /// [`LossResult`] carries [`LossResult::degraded`] when a fallback rung
    /// produced it.
    ///
    /// # Errors
    ///
    /// Propagates surface-mismatch and solver errors.
    pub fn solve_with_reference_diagnosed(
        &self,
        surface: &RoughSurface,
        flat_reference: f64,
        operator: &SwmOperator,
    ) -> Result<(LossResult, SolveDiagnostics), SwmError> {
        let (power, stats, diagnostics) = self.absorbed_power_diagnosed(surface, operator)?;
        let loss = LossResult::new(
            self.frequency,
            power,
            flat_reference,
            self.analytic_smooth_power(),
            stats.relative_residual,
            self.cells_per_side * self.cells_per_side,
        )
        .with_degraded(diagnostics.degraded);
        Ok((loss, diagnostics))
    }

    fn check_surface(&self, surface: &RoughSurface) -> Result<(), SwmError> {
        if surface.samples_per_side() != self.cells_per_side {
            return Err(SwmError::SurfaceMismatch {
                expected: format!("{} samples per side", self.cells_per_side),
                found: format!("{} samples per side", surface.samples_per_side()),
            });
        }
        let expected_l = self.patch_length();
        if (surface.patch_length() - expected_l).abs() > 1e-9 * expected_l {
            return Err(SwmError::SurfaceMismatch {
                expected: format!("patch length {expected_l:.3e} m"),
                found: format!("patch length {:.3e} m", surface.patch_length()),
            });
        }
        Ok(())
    }
}

impl SwmProblemBuilder {
    /// Sets the simulation frequency (required).
    pub fn frequency(mut self, frequency: Frequency) -> Self {
        self.frequency = Some(frequency);
        self
    }

    /// Sets the number of cells per side of the patch directly.
    pub fn cells_per_side(mut self, n: usize) -> Self {
        self.cells_per_side = n;
        self
    }

    /// Sets the resolution as cells per correlation length (the paper uses 8,
    /// i.e. a grid interval of η/8). Only meaningful for stochastic
    /// specifications; the resulting cell count is `patch length / η × cells`.
    pub fn cells_per_correlation_length(mut self, cells: usize) -> Self {
        if let Some(cf) = self.roughness.correlation() {
            let eta = cf.correlation_length();
            let l = self.roughness.patch_length();
            self.cells_per_side = ((l / eta) * cells as f64).round().max(4.0) as usize;
        }
        self
    }

    /// Selects the linear-solver strategy.
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Selects the near-field assembly scheme (defaults to the locally
    /// corrected scheme with [`crate::NearFieldPolicy::default`]).
    pub fn assembly(mut self, assembly: AssemblyScheme) -> Self {
        self.assembly = assembly;
        self
    }

    /// Selects the kernel evaluation strategy (defaults to
    /// [`KernelEval::Batched`], the blocked row-panel fast path;
    /// [`KernelEval::Scalar`] is the per-entry oracle used by equivalence
    /// tests and benchmarks).
    pub fn kernel_eval(mut self, kernel_eval: KernelEval) -> Self {
        self.kernel_eval = kernel_eval;
        self
    }

    /// Selects the operator representation (defaults to
    /// [`OperatorRepr::Dense`]). The matrix-free representation evaluates the
    /// far field as an FFT convolution with sparse near-field precorrections
    /// and requires a Krylov [`SolverKind`] plus the locally corrected
    /// assembly scheme.
    pub fn operator_repr(mut self, operator_repr: OperatorRepr) -> Self {
        self.operator_repr = operator_repr;
        self
    }

    /// Selects the intra-solve assembly parallelism (defaults to
    /// [`AssemblyParallelism::Serial`]). Row panels are independent work
    /// items, so any worker count produces bit-identical matrices; the
    /// `ROUGHSIM_ASSEMBLY_THREADS` environment variable overrides this in
    /// the engine and the figure drivers.
    pub fn assembly_parallelism(mut self, parallelism: AssemblyParallelism) -> Self {
        self.assembly_parallelism = parallelism;
        self
    }

    /// Finalizes the problem.
    ///
    /// # Errors
    ///
    /// Returns [`SwmError::InvalidConfiguration`] if the frequency is missing
    /// or not positive, or the grid is too coarse.
    pub fn build(self) -> Result<SwmProblem, SwmError> {
        let frequency = self.frequency.ok_or_else(|| {
            SwmError::InvalidConfiguration("a simulation frequency must be specified".into())
        })?;
        if frequency.value() <= 0.0 {
            return Err(SwmError::InvalidConfiguration(
                "the simulation frequency must be positive".into(),
            ));
        }
        if self.cells_per_side < 4 {
            return Err(SwmError::InvalidConfiguration(format!(
                "at least 4 cells per side are required, got {}",
                self.cells_per_side
            )));
        }
        if let OperatorRepr::MatrixFree(mf) = self.operator_repr {
            mf.validate().map_err(SwmError::InvalidConfiguration)?;
            if self.solver == SolverKind::DirectLu {
                return Err(SwmError::InvalidConfiguration(
                    "the matrix-free operator never forms the dense matrix DirectLu needs; \
                     select a Krylov solver (Bicgstab or Gmres)"
                        .into(),
                ));
            }
            if matches!(self.assembly, AssemblyScheme::Legacy) {
                return Err(SwmError::InvalidConfiguration(
                    "the matrix-free operator precorrects near entries with the locally \
                     corrected scheme; AssemblyScheme::Legacy is not supported"
                        .into(),
                ));
            }
        }
        if self.cells_per_side > 128 {
            return Err(SwmError::InvalidConfiguration(format!(
                "{} cells per side would create a dense system of order {}; keep the patch below 128 cells per side",
                self.cells_per_side,
                2 * self.cells_per_side * self.cells_per_side
            )));
        }
        Ok(SwmProblem {
            stack: self.stack,
            roughness: self.roughness,
            frequency,
            cells_per_side: self.cells_per_side,
            solver: self.solver,
            assembly: self.assembly,
            kernel_eval: self.kernel_eval,
            operator_repr: self.operator_repr,
            assembly_parallelism: self.assembly_parallelism,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rough_em::units::{GigaHertz, Micrometers};

    fn paper_problem(cells: usize, ghz: f64) -> SwmProblem {
        SwmProblem::builder(
            Stackup::paper_baseline(),
            RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0)),
        )
        .frequency(GigaHertz::new(ghz).into())
        .cells_per_side(cells)
        .build()
        .expect("valid configuration")
    }

    #[test]
    fn flat_patch_reproduces_the_analytic_smooth_power() {
        // The normalization anchor: the numerically solved flat patch must
        // match |T|^2 L^2/(2 delta) to within the discretization error.
        for ghz in [1.0, 5.0] {
            let problem = paper_problem(8, ghz);
            let numeric = problem.flat_reference_power().unwrap();
            let analytic = problem.analytic_smooth_power();
            let rel = (numeric - analytic).abs() / analytic;
            assert!(
                rel < 0.08,
                "f = {ghz} GHz: numeric {numeric:.4e} vs analytic {analytic:.4e} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn flat_surface_enhancement_is_unity() {
        let problem = paper_problem(6, 5.0);
        let flat = RoughSurface::flat(6, problem.patch_length());
        let result = problem.solve(&flat).unwrap();
        assert!((result.enhancement_factor() - 1.0).abs() < 1e-10);
        assert!(result.relative_residual() < 1e-8);
    }

    #[test]
    fn rough_surface_increases_the_loss_and_scales_with_roughness() {
        let problem = paper_problem(8, 5.0);
        let l = problem.patch_length();
        let bumpy = |amp: f64| {
            RoughSurface::from_fn(8, l, |x, y| {
                amp * ((2.0 * std::f64::consts::PI * x / l).cos()
                    + (2.0 * std::f64::consts::PI * y / l).sin())
            })
        };
        let reference = problem.flat_reference_power().unwrap();
        let small = problem
            .solve_with_reference(&bumpy(0.2e-6), reference)
            .unwrap();
        let large = problem
            .solve_with_reference(&bumpy(0.6e-6), reference)
            .unwrap();
        assert!(small.enhancement_factor() > 1.0);
        assert!(large.enhancement_factor() > small.enhancement_factor());
        assert!(large.enhancement_factor() < 4.0, "implausibly large factor");
    }

    #[test]
    fn enhancement_grows_with_frequency() {
        let l = 5e-6;
        let surface = RoughSurface::from_fn(8, l, |x, y| {
            0.5e-6
                * ((2.0 * std::f64::consts::PI * x / l).cos()
                    + (2.0 * std::f64::consts::PI * y / l).sin())
        });
        let low = paper_problem(8, 2.0).solve(&surface).unwrap();
        let high = paper_problem(8, 8.0).solve(&surface).unwrap();
        assert!(high.enhancement_factor() > low.enhancement_factor());
        // At this coarse 8×8 validation grid the enhancement carries a small
        // (documented) low bias; the physical trend is what is asserted here,
        // finer grids are exercised by the experiment harness.
        assert!(low.enhancement_factor() > 0.95);
        assert!(high.enhancement_factor() > 1.0);
    }

    #[test]
    fn sampled_surfaces_are_reproducible_and_match_the_grid() {
        let problem = paper_problem(8, 5.0);
        let a = problem.sample_surface(3);
        let b = problem.sample_surface(3);
        let c = problem.sample_surface(4);
        assert_eq!(a.heights(), b.heights());
        assert_ne!(a.heights(), c.heights());
        assert_eq!(a.samples_per_side(), 8);
        assert!((a.patch_length() - problem.patch_length()).abs() < 1e-18);
        // Non-power-of-two grids fall back to the KL sampler.
        let kl_problem = paper_problem(6, 5.0);
        let s = kl_problem.sample_surface(1);
        assert_eq!(s.samples_per_side(), 6);
        assert!(s.rms_height() > 0.1e-6);
    }

    #[test]
    fn surface_mismatch_is_detected() {
        let problem = paper_problem(8, 5.0);
        let wrong_n = RoughSurface::flat(6, problem.patch_length());
        assert!(matches!(
            problem.solve(&wrong_n),
            Err(SwmError::SurfaceMismatch { .. })
        ));
        let wrong_l = RoughSurface::flat(8, 2.0 * problem.patch_length());
        assert!(matches!(
            problem.solve(&wrong_l),
            Err(SwmError::SurfaceMismatch { .. })
        ));
    }

    #[test]
    fn builder_validation() {
        let stack = Stackup::paper_baseline();
        let spec = RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0));
        assert!(matches!(
            SwmProblem::builder(stack, spec.clone()).build(),
            Err(SwmError::InvalidConfiguration(_))
        ));
        assert!(matches!(
            SwmProblem::builder(stack, spec.clone())
                .frequency(GigaHertz::new(5.0).into())
                .cells_per_side(2)
                .build(),
            Err(SwmError::InvalidConfiguration(_))
        ));
        assert!(matches!(
            SwmProblem::builder(stack, spec.clone())
                .frequency(GigaHertz::new(5.0).into())
                .cells_per_side(500)
                .build(),
            Err(SwmError::InvalidConfiguration(_))
        ));
        let p = SwmProblem::builder(stack, spec)
            .frequency(GigaHertz::new(5.0).into())
            .cells_per_correlation_length(2)
            .build()
            .unwrap();
        assert_eq!(p.cells_per_side(), 10);
    }

    #[test]
    fn matrix_free_problem_matches_dense_end_to_end() {
        let stack = Stackup::paper_baseline();
        let spec = RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0));
        let dense = SwmProblem::builder(stack, spec.clone())
            .frequency(GigaHertz::new(5.0).into())
            .cells_per_side(8)
            .build()
            .unwrap();
        let mf = SwmProblem::builder(stack, spec)
            .frequency(GigaHertz::new(5.0).into())
            .cells_per_side(8)
            .solver(SolverKind::Bicgstab { tolerance: 1e-12 })
            .operator_repr(OperatorRepr::MatrixFree(Default::default()))
            .build()
            .unwrap();
        let surface = dense.sample_surface(11);
        let a = dense.solve(&surface).unwrap();
        let b = mf.solve(&surface).unwrap();
        let rel = (a.enhancement_factor() - b.enhancement_factor()).abs() / a.enhancement_factor();
        assert!(rel <= 1e-8, "dense vs matrix-free Pr/Ps rel diff {rel:e}");
    }

    #[test]
    fn matrix_free_builder_validation() {
        let stack = Stackup::paper_baseline();
        let spec = RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0));
        // DirectLu cannot act on a matrix-free operator.
        assert!(matches!(
            SwmProblem::builder(stack, spec.clone())
                .frequency(GigaHertz::new(5.0).into())
                .operator_repr(OperatorRepr::MatrixFree(Default::default()))
                .build(),
            Err(SwmError::InvalidConfiguration(_))
        ));
        // The legacy scheme has no locally corrected near integrals to reuse.
        assert!(matches!(
            SwmProblem::builder(stack, spec.clone())
                .frequency(GigaHertz::new(5.0).into())
                .solver(SolverKind::Bicgstab { tolerance: 1e-10 })
                .assembly(AssemblyScheme::Legacy)
                .operator_repr(OperatorRepr::MatrixFree(Default::default()))
                .build(),
            Err(SwmError::InvalidConfiguration(_))
        ));
        // An invalid matrix-free policy is caught at build time.
        assert!(matches!(
            SwmProblem::builder(stack, spec)
                .frequency(GigaHertz::new(5.0).into())
                .solver(SolverKind::Bicgstab { tolerance: 1e-10 })
                .operator_repr(OperatorRepr::MatrixFree(
                    crate::matrixfree::MatrixFreePolicy {
                        order: 3,
                        safety: 0.5,
                    },
                ))
                .build(),
            Err(SwmError::InvalidConfiguration(_))
        ));
    }

    #[test]
    fn at_frequency_preserves_everything_else() {
        let p = paper_problem(8, 5.0);
        let q = p.at_frequency(GigaHertz::new(9.0).into());
        assert_eq!(q.cells_per_side(), 8);
        assert!((q.frequency().as_gigahertz() - 9.0).abs() < 1e-12);
        assert!((q.patch_length() - p.patch_length()).abs() < 1e-18);
    }
}
