//! # rough-core
//!
//! The scalar wave modeling (SWM) solver — the primary contribution of
//! *Chen & Wong, "New Simulation Methodology of 3D Surface Roughness Loss for
//! Interconnects Modeling", DATE 2009*.
//!
//! The solver computes the conductor-loss enhancement factor `Pr/Ps` of a rough
//! dielectric/conductor interface by:
//!
//! 1. restricting the problem to a doubly-periodic `L × L` patch
//!    ([`mesh::PatchMesh`]),
//! 2. formulating the coupled two-medium scalar integral equations with the
//!    continuous boundary condition `ψ₁ = ψ₂`, `∂ₙψ₁ = β ∂ₙψ₂`
//!    ([`assembly3d`]),
//! 3. evaluating the doubly-periodic kernels with the Ewald method
//!    (`rough-em`),
//! 4. solving the `2N × 2N` dense system directly or iteratively
//!    ([`solver`]), and
//! 5. integrating the absorbed power `Pr = ∮ ½ Re{ψ* u}` and normalizing by the
//!    smooth-surface reference ([`power`], [`loss::LossResult`]).
//!
//! The [`SwmProblem`] builder is the main entry point; [`swm2d::Swm2dProblem`]
//! provides the simplified 2D formulation used for the 3D-vs-2D comparison of
//! the paper's Fig. 6.
//!
//! # Example
//!
//! ```
//! use rough_core::{RoughnessSpec, SwmProblem};
//! use rough_em::material::Stackup;
//! use rough_em::units::{GigaHertz, Micrometers};
//!
//! # fn main() -> Result<(), rough_core::SwmError> {
//! let problem = SwmProblem::builder(
//!     Stackup::paper_baseline(),
//!     RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0)),
//! )
//! .frequency(GigaHertz::new(5.0).into())
//! .cells_per_side(6)
//! .build()?;
//! let surface = problem.sample_surface(42);
//! let loss = problem.solve(&surface)?;
//! // On the coarse 6×6 demo grid the enhancement carries a small low bias,
//! // so individual realizations are only guaranteed to clear 0.9 (finer
//! // grids recover Pr/Ps ≥ 1; see the swm3d tests).
//! assert!(loss.enhancement_factor() > 0.9);
//! println!("Pr/Ps = {:.3}", loss.enhancement_factor());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod assembly2d;
pub mod assembly3d;
mod error;
pub mod loss;
pub mod matrixfree;
pub mod mesh;
pub mod nearfield;
pub mod parallel;
pub mod power;
pub mod solver;
mod spec;
pub mod swm2d;
pub mod swm3d;

pub use error::SwmError;
pub use matrixfree::{
    BlockDiagonalPreconditioner, MatrixFreeOperator, MatrixFreePolicy, MfTableCache, OperatorRepr,
};
pub use nearfield::{AssemblyScheme, AssemblyStats, KernelEval, NearFieldPolicy};
pub use parallel::{AssemblyParallelism, ASSEMBLY_THREADS_ENV};
pub use solver::{SolveAttempt, SolveDiagnostics, SolverKind};
pub use spec::RoughnessSpec;
pub use swm3d::{SwmOperator, SwmProblem, SwmProblemBuilder};
