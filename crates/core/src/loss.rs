//! Result type of one SWM solve: absorbed powers and the loss-enhancement
//! factor `Pr/Ps`.

use rough_em::units::Frequency;

/// Outcome of solving the SWM problem on one surface realization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossResult {
    frequency: Frequency,
    absorbed_power: f64,
    flat_absorbed_power: f64,
    analytic_smooth_power: f64,
    relative_residual: f64,
    unknowns: usize,
    degraded: bool,
}

impl LossResult {
    /// Creates a result record (used by the solvers; not usually constructed
    /// by downstream users). The result starts non-degraded; solvers that
    /// fell back mark it with [`LossResult::with_degraded`].
    pub fn new(
        frequency: Frequency,
        absorbed_power: f64,
        flat_absorbed_power: f64,
        analytic_smooth_power: f64,
        relative_residual: f64,
        unknowns: usize,
    ) -> Self {
        Self {
            frequency,
            absorbed_power,
            flat_absorbed_power,
            analytic_smooth_power,
            relative_residual,
            unknowns,
            degraded: false,
        }
    }

    /// Marks whether this solve completed through a degraded path (the
    /// configured solver failed and an escalation fallback produced the
    /// result).
    pub fn with_degraded(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }

    /// Frequency of the solve.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Absorbed power of the rough patch, `Pr` (paper eq. (10), in the
    /// unit-incident-wave normalization).
    pub fn absorbed_power(&self) -> f64 {
        self.absorbed_power
    }

    /// Absorbed power of the numerically solved *flat* patch (same grid, same
    /// solver), used as the `Ps` reference so discretization bias cancels.
    pub fn flat_absorbed_power(&self) -> f64 {
        self.flat_absorbed_power
    }

    /// Analytic smooth-surface power `|T|²·L²/(2δ)` (paper eq. (11) scaled by
    /// the incident-wave transmission), reported as a cross-check of the
    /// numerical flat reference.
    pub fn analytic_smooth_power(&self) -> f64 {
        self.analytic_smooth_power
    }

    /// Loss-enhancement factor `Pr/Ps` — the quantity every figure of the
    /// paper reports.
    pub fn enhancement_factor(&self) -> f64 {
        self.absorbed_power / self.flat_absorbed_power
    }

    /// Loss-enhancement factor referenced to the *analytic* smooth power
    /// instead of the numerically solved flat patch.
    pub fn enhancement_factor_analytic_reference(&self) -> f64 {
        self.absorbed_power / self.analytic_smooth_power
    }

    /// Relative residual of the linear solve (solution quality indicator).
    pub fn relative_residual(&self) -> f64 {
        self.relative_residual
    }

    /// Number of surface unknowns N (system order was 2N).
    pub fn unknowns(&self) -> usize {
        self.unknowns
    }

    /// Whether this result came through a degraded solver path (see
    /// [`LossResult::with_degraded`]).
    pub fn degraded(&self) -> bool {
        self.degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rough_em::units::GigaHertz;

    #[test]
    fn enhancement_factors() {
        let r = LossResult::new(GigaHertz::new(5.0).into(), 3.0, 2.0, 1.9, 1e-12, 64);
        assert!((r.enhancement_factor() - 1.5).abs() < 1e-15);
        assert!((r.enhancement_factor_analytic_reference() - 3.0 / 1.9).abs() < 1e-15);
        assert_eq!(r.unknowns(), 64);
        assert_eq!(r.frequency().as_gigahertz(), 5.0);
        assert!(r.relative_residual() < 1e-10);
        assert_eq!(r.absorbed_power(), 3.0);
        assert_eq!(r.flat_absorbed_power(), 2.0);
        assert_eq!(r.analytic_smooth_power(), 1.9);
    }
}
