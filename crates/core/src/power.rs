//! Absorbed-power evaluation (paper eqs. (10)–(11)).
//!
//! After the MOM solve the absorbed power of the patch is
//!
//! ```text
//! Pr = ∫_L² ½ Re{ψ*(r) u(r)} dr ≈ Σ_j ½ Re{Ψ_j* U_j} Δ²
//! ```
//!
//! and the smooth-surface reference is `Ps = |T|²·L²/(2δ)` (the paper quotes
//! `L²/(2δ)`, i.e. a unit-amplitude surface field; the incident-wave
//! normalization cancels in the ratio `Pr/Ps`). The loss-enhancement factor is
//! always formed against the *numerically* solved flat patch so that residual
//! discretization bias cancels; the analytic value is reported alongside as a
//! cross-check.

use crate::mesh::{ContourMesh, PatchMesh};
use rough_numerics::complex::c64;

/// Absorbed power of a solved 3D patch.
///
/// `psi` and `u` are the surface unknowns returned by the solver (length N
/// each, cell-ordered like the mesh).
///
/// # Panics
///
/// Panics if the slice lengths do not match the mesh.
pub fn absorbed_power_3d(mesh: &PatchMesh, psi: &[c64], u: &[c64]) -> f64 {
    assert_eq!(psi.len(), mesh.len(), "psi length must match the mesh");
    assert_eq!(u.len(), mesh.len(), "u length must match the mesh");
    let area = mesh.cell_area();
    psi.iter()
        .zip(u)
        .map(|(p, du)| 0.5 * (p.conj() * *du).re * area)
        .sum()
}

/// Absorbed power per unit length of a solved 2D contour.
///
/// # Panics
///
/// Panics if the slice lengths do not match the mesh.
pub fn absorbed_power_2d(mesh: &ContourMesh, psi: &[c64], u: &[c64]) -> f64 {
    assert_eq!(psi.len(), mesh.len(), "psi length must match the mesh");
    assert_eq!(u.len(), mesh.len(), "u length must match the mesh");
    let width = mesh.segment_width();
    psi.iter()
        .zip(u)
        .map(|(p, du)| 0.5 * (p.conj() * *du).re * width)
        .sum()
}

/// Analytic smooth-surface absorbed power of an `area` patch carrying a
/// tangential field of amplitude `|t|`: `|t|²·area/(2δ)` (paper eq. (11) is the
/// `|t| = 1` case).
pub fn smooth_surface_power(area: f64, skin_depth: f64, transmission_magnitude: f64) -> f64 {
    transmission_magnitude * transmission_magnitude * area / (2.0 * skin_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rough_surface::{Profile1d, RoughSurface};

    #[test]
    fn flat_patch_power_matches_closed_form() {
        // psi = T, u = -j k2 T on every cell reproduces |T|^2 L^2/(2 delta).
        let mesh = PatchMesh::from_surface(&RoughSurface::flat(8, 5e-6));
        let delta_skin = 1.0e-6;
        let t = c64::new(2.0, -0.01);
        let k2 = c64::new(1.0 / delta_skin, 1.0 / delta_skin);
        let n = mesh.len();
        let psi = vec![t; n];
        let u = vec![c64::new(0.0, -1.0) * k2 * t; n];
        let pr = absorbed_power_3d(&mesh, &psi, &u);
        let expected = smooth_surface_power(mesh.patch_area(), delta_skin, t.abs());
        assert!(
            (pr - expected).abs() < 1e-9 * expected,
            "{pr} vs {expected}"
        );
        assert!(pr > 0.0);
    }

    #[test]
    fn power_is_additive_over_cells() {
        let mesh = PatchMesh::from_surface(&RoughSurface::flat(4, 4e-6));
        let n = mesh.len();
        let mut psi = vec![c64::zero(); n];
        let mut u = vec![c64::zero(); n];
        psi[3] = c64::new(1.0, 0.0);
        u[3] = c64::new(2.0, -2.0);
        let pr = absorbed_power_3d(&mesh, &psi, &u);
        assert!((pr - 0.5 * 2.0 * mesh.cell_area()).abs() < 1e-25);
    }

    #[test]
    fn contour_power_matches_closed_form() {
        let mesh = ContourMesh::from_profile(&Profile1d::flat(16, 5e-6));
        let delta_skin = 0.5e-6;
        let t = c64::new(2.0, 0.0);
        let k2 = c64::new(1.0 / delta_skin, 1.0 / delta_skin);
        let psi = vec![t; 16];
        let u = vec![c64::new(0.0, -1.0) * k2 * t; 16];
        let pr = absorbed_power_2d(&mesh, &psi, &u);
        let expected = t.norm_sqr() * 5e-6 / (2.0 * delta_skin);
        assert!((pr - expected).abs() < 1e-9 * expected);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn mismatched_lengths_panic() {
        let mesh = PatchMesh::from_surface(&RoughSurface::flat(4, 4e-6));
        absorbed_power_3d(&mesh, &[c64::one()], &[c64::one()]);
    }
}
