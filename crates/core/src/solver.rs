//! Linear-system solution strategies for the assembled MOM system.
//!
//! The paper points out that eq. (9) can be attacked either directly or with
//! iterative solvers of `O(N log N)` flavour. Both paths are provided: a dense
//! LU with partial pivoting (robust default for the patch sizes of the
//! experiments) and the Krylov solvers of `rough-numerics` (BiCGSTAB /
//! restarted GMRES), which only need matrix–vector products and therefore also
//! serve the matrix-free ablation benches.

use crate::error::SwmError;
use rough_numerics::complex::c64;
use rough_numerics::iterative::{bicgstab, gmres, IterativeConfig, IterativeError, LinearOperator};
use rough_numerics::linalg::CMatrix;

/// Strategy used to solve the assembled `2N × 2N` system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SolverKind {
    /// Dense LU factorization with partial pivoting (default).
    #[default]
    DirectLu,
    /// BiCGSTAB Krylov iteration.
    Bicgstab {
        /// Relative residual tolerance.
        tolerance: f64,
    },
    /// Restarted GMRES(m) Krylov iteration.
    Gmres {
        /// Relative residual tolerance.
        tolerance: f64,
        /// Restart length.
        restart: usize,
    },
}

/// Diagnostics of one linear solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Relative residual `‖b − A·x‖ / ‖b‖` of the returned solution.
    pub relative_residual: f64,
    /// Iterations used (0 for the direct solver).
    pub iterations: usize,
}

/// One rung of a solver escalation ladder: which strategy ran and how it
/// ended.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveAttempt {
    /// Human-readable strategy label, e.g. `gmres(restart=50)` or
    /// `direct-lu-fallback`.
    pub strategy: String,
    /// `ok` for a successful attempt, otherwise the failure message.
    pub outcome: String,
    /// Iterations the attempt used (0 for direct solves).
    pub iterations: usize,
    /// Relative residual the attempt reached (`NaN` when it produced none).
    pub relative_residual: f64,
}

impl SolveAttempt {
    fn ok(strategy: impl Into<String>, stats: SolveStats) -> Self {
        Self {
            strategy: strategy.into(),
            outcome: "ok".into(),
            iterations: stats.iterations,
            relative_residual: stats.relative_residual,
        }
    }

    fn failed(strategy: impl Into<String>, error: &SwmError) -> Self {
        Self {
            strategy: strategy.into(),
            outcome: error.to_string(),
            iterations: 0,
            relative_residual: f64::NAN,
        }
    }

    /// Whether this attempt succeeded.
    pub fn succeeded(&self) -> bool {
        self.outcome == "ok"
    }
}

/// Structured record of how a solve was obtained: every attempt in order,
/// and whether the result came from a fallback rung instead of the
/// configured strategy. Attached to reports by the graceful-degradation
/// ladder (`SwmProblem::absorbed_power_diagnosed`) so a degraded run is
/// visible instead of silent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveDiagnostics {
    /// Attempts in escalation order; the last one produced the result.
    pub attempts: Vec<SolveAttempt>,
    /// `true` when the configured strategy failed and a fallback produced
    /// the result.
    pub degraded: bool,
}

impl SolveDiagnostics {
    /// Records a successful attempt.
    pub fn push_ok(&mut self, strategy: impl Into<String>, stats: SolveStats) {
        self.attempts.push(SolveAttempt::ok(strategy, stats));
    }

    /// Records a failed attempt; any later success marks the solve degraded.
    pub fn push_failed(&mut self, strategy: impl Into<String>, error: &SwmError) {
        self.attempts.push(SolveAttempt::failed(strategy, error));
        self.degraded = true;
    }

    /// One-line summary of the escalation chain, e.g.
    /// `gmres(restart=50): injected Krylov breakdown -> direct-lu-fallback: ok`.
    pub fn summary(&self) -> String {
        self.attempts
            .iter()
            .map(|a| format!("{}: {}", a.strategy, a.outcome))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Human-readable label of a solver strategy (diagnostics / logs).
pub fn strategy_label(kind: SolverKind) -> String {
    match kind {
        SolverKind::DirectLu => "direct-lu".into(),
        SolverKind::Bicgstab { tolerance } => format!("bicgstab(tol={tolerance:.0e})"),
        SolverKind::Gmres { tolerance, restart } => {
            format!("gmres(tol={tolerance:.0e},restart={restart})")
        }
    }
}

/// Solves `A·x = b` with the requested strategy.
///
/// # Errors
///
/// Returns [`SwmError::LinearSolver`] if the factorization detects a singular
/// matrix or the iteration fails to converge.
pub fn solve_system(
    matrix: &CMatrix,
    rhs: &[c64],
    kind: SolverKind,
) -> Result<(Vec<c64>, SolveStats), SwmError> {
    match kind {
        SolverKind::DirectLu => {
            let x = matrix
                .solve(rhs)
                .map_err(|e| SwmError::LinearSolver(e.to_string()))?;
            let stats = SolveStats {
                relative_residual: relative_residual(matrix, rhs, &x),
                iterations: 0,
            };
            Ok((x, stats))
        }
        SolverKind::Bicgstab { .. } | SolverKind::Gmres { .. } => {
            solve_operator(matrix, rhs, kind, None)
        }
    }
}

/// Composition `A·M⁻¹` used for right preconditioning: the Krylov iteration
/// solves `A·M⁻¹·u = b` and the caller recovers `x = M⁻¹·u`. Because the
/// solver's residual is measured on `A·M⁻¹·u`, it equals the *true* residual
/// of `A·x = b` — right preconditioning never distorts the reported accuracy.
struct RightPreconditioned<'a> {
    op: &'a dyn LinearOperator,
    precond: &'a dyn LinearOperator,
}

impl LinearOperator for RightPreconditioned<'_> {
    fn dim(&self) -> usize {
        self.op.dim()
    }

    fn apply(&self, x: &[c64]) -> Vec<c64> {
        self.op.apply(&self.precond.apply(x))
    }
}

/// Solves `A·x = b` through *any* [`LinearOperator`] — dense or matrix-free —
/// with an optional right preconditioner `M⁻¹` (itself just another operator;
/// see [`crate::matrixfree::BlockDiagonalPreconditioner`]).
///
/// Only the Krylov strategies apply: a matrix-free operator exposes nothing a
/// direct factorization could act on.
///
/// # Errors
///
/// Returns [`SwmError::LinearSolver`] when `kind` is [`SolverKind::DirectLu`]
/// (which requires a dense matrix — use [`solve_system`]) or when the
/// iteration breaks down or fails to converge.
pub fn solve_operator(
    op: &dyn LinearOperator,
    rhs: &[c64],
    kind: SolverKind,
    precond: Option<&dyn LinearOperator>,
) -> Result<(Vec<c64>, SolveStats), SwmError> {
    let config = krylov_config(kind)?;
    solve_operator_configured(op, rhs, kind, precond, &config)
}

/// The [`IterativeConfig`] a Krylov [`SolverKind`] implies (default iteration
/// budget, the kind's tolerance and restart).
///
/// # Errors
///
/// Returns [`SwmError::LinearSolver`] for [`SolverKind::DirectLu`], which has
/// no iterative configuration.
pub fn krylov_config(kind: SolverKind) -> Result<IterativeConfig, SwmError> {
    match kind {
        SolverKind::DirectLu => Err(SwmError::LinearSolver(
            "DirectLu requires a dense matrix; use a Krylov SolverKind for operator solves".into(),
        )),
        SolverKind::Bicgstab { tolerance } => Ok(IterativeConfig {
            tolerance,
            ..Default::default()
        }),
        SolverKind::Gmres { tolerance, restart } => Ok(IterativeConfig {
            tolerance,
            restart,
            ..Default::default()
        }),
    }
}

/// [`solve_operator`] with an explicit [`IterativeConfig`] — the escalation
/// ladder retries a failed solve with a tightened config through this entry
/// point. The config's `tolerance`/`restart` take precedence over the values
/// embedded in `kind`; `kind` only selects the method.
///
/// The named fault point `solver.krylov.breakdown`
/// ([`rough_faults::should_fire`]) injects a deterministic breakdown here,
/// before any iteration runs — the hook chaos tests use to force the
/// degradation ladder without constructing a pathological system.
///
/// # Errors
///
/// Same contract as [`solve_operator`].
pub fn solve_operator_configured(
    op: &dyn LinearOperator,
    rhs: &[c64],
    kind: SolverKind,
    precond: Option<&dyn LinearOperator>,
    config: &IterativeConfig,
) -> Result<(Vec<c64>, SolveStats), SwmError> {
    let use_gmres = match kind {
        SolverKind::DirectLu => {
            return Err(SwmError::LinearSolver(
                "DirectLu requires a dense matrix; use a Krylov SolverKind for operator solves"
                    .into(),
            ))
        }
        SolverKind::Bicgstab { .. } => false,
        SolverKind::Gmres { .. } => true,
    };
    if rough_faults::should_fire("solver.krylov.breakdown") {
        return Err(SwmError::LinearSolver(
            "injected Krylov breakdown (fault plan)".into(),
        ));
    }
    let composed;
    let krylov_op: &dyn LinearOperator = match precond {
        Some(precond) => {
            composed = RightPreconditioned { op, precond };
            &composed
        }
        None => op,
    };
    let sol = if use_gmres {
        gmres(krylov_op, rhs, config)
    } else {
        bicgstab(krylov_op, rhs, config)
    }
    .map_err(map_iterative_error)?;
    let x = match precond {
        Some(precond) => precond.apply(&sol.x),
        None => sol.x,
    };
    Ok((
        x,
        SolveStats {
            relative_residual: sol.residual,
            iterations: sol.iterations,
        },
    ))
}

fn map_iterative_error(e: IterativeError) -> SwmError {
    SwmError::LinearSolver(e.to_string())
}

fn relative_residual(matrix: &CMatrix, rhs: &[c64], x: &[c64]) -> f64 {
    let ax = matrix.matvec(x);
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in ax.iter().zip(rhs) {
        num += (*a - *b).norm_sqr();
        den += b.norm_sqr();
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_system(n: usize) -> (CMatrix, Vec<c64>) {
        let a = CMatrix::from_fn(n, n, |i, j| {
            if i == j {
                c64::new(3.0, 0.5)
            } else {
                c64::new(0.2 / (1.0 + (i as f64 - j as f64).abs()), -0.05)
            }
        });
        let b: Vec<c64> = (0..n)
            .map(|i| c64::new(1.0 + i as f64 * 0.1, -0.3))
            .collect();
        (a, b)
    }

    #[test]
    fn all_solvers_agree() {
        let (a, b) = test_system(30);
        let (x_lu, s_lu) = solve_system(&a, &b, SolverKind::DirectLu).unwrap();
        let (x_bi, s_bi) = solve_system(&a, &b, SolverKind::Bicgstab { tolerance: 1e-11 }).unwrap();
        let (x_gm, s_gm) = solve_system(
            &a,
            &b,
            SolverKind::Gmres {
                tolerance: 1e-11,
                restart: 25,
            },
        )
        .unwrap();
        assert!(s_lu.relative_residual < 1e-12);
        assert!(s_bi.iterations > 0 && s_bi.relative_residual < 1e-10);
        assert!(s_gm.iterations > 0 && s_gm.relative_residual < 1e-10);
        for i in 0..30 {
            assert!((x_lu[i] - x_bi[i]).abs() < 1e-8);
            assert!((x_lu[i] - x_gm[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn operator_solve_with_jacobi_preconditioner_matches_direct() {
        use rough_numerics::iterative::FnOperator;
        let (a, b) = test_system(30);
        let (x_lu, _) = solve_system(&a, &b, SolverKind::DirectLu).unwrap();
        let diag_inv: Vec<c64> = (0..30).map(|i| a[(i, i)].recip()).collect();
        let jacobi = FnOperator::new(30, move |x: &[c64]| {
            x.iter().zip(&diag_inv).map(|(v, d)| *v * *d).collect()
        });
        for kind in [
            SolverKind::Bicgstab { tolerance: 1e-12 },
            SolverKind::Gmres {
                tolerance: 1e-12,
                restart: 25,
            },
        ] {
            let (x, stats) = solve_operator(&a, &b, kind, Some(&jacobi)).unwrap();
            assert!(stats.iterations > 0 && stats.relative_residual < 1e-10);
            for i in 0..30 {
                assert!((x_lu[i] - x[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn operator_solve_rejects_direct_lu() {
        let (a, b) = test_system(4);
        match solve_operator(&a, &b, SolverKind::DirectLu, None) {
            Err(SwmError::LinearSolver(msg)) => assert!(msg.contains("DirectLu")),
            other => panic!("expected solver error, got {other:?}"),
        }
    }

    #[test]
    fn singular_matrix_is_an_error() {
        let a = CMatrix::zeros(4, 4);
        let b = vec![c64::one(); 4];
        match solve_system(&a, &b, SolverKind::DirectLu) {
            Err(SwmError::LinearSolver(msg)) => assert!(msg.contains("singular")),
            other => panic!("expected solver error, got {other:?}"),
        }
    }

    #[test]
    fn default_solver_is_direct() {
        assert_eq!(SolverKind::default(), SolverKind::DirectLu);
    }
}
