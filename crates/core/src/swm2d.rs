//! High-level 2D SWM problem (Fig. 6 comparison case).
//!
//! The 2D formulation treats the surface height as uniform along `y`, reducing
//! the integral equation to a periodic contour in the `(x, z)` plane. The paper
//! uses it to demonstrate that genuinely 3D roughness produces a markedly
//! larger loss enhancement than a 2D (ridged) roughness of the same σ and η.

use crate::assembly2d::assemble_system_2d_with;
use crate::error::SwmError;
use crate::loss::LossResult;
use crate::mesh::ContourMesh;
use crate::nearfield::{AssemblyScheme, KernelEval};
use crate::parallel::AssemblyParallelism;
use crate::power::absorbed_power_2d;
use crate::solver::{solve_system, SolverKind};
use rough_em::fresnel::flat_interface;
use rough_em::green::PeriodicGreen2d;
use rough_em::material::Stackup;
use rough_em::units::Frequency;
use rough_surface::Profile1d;

/// A configured 2D scalar-wave-modeling problem.
///
/// # Example
///
/// ```
/// use rough_core::swm2d::Swm2dProblem;
/// use rough_em::material::Stackup;
/// use rough_em::units::GigaHertz;
/// use rough_surface::Profile1d;
///
/// # fn main() -> Result<(), rough_core::SwmError> {
/// let problem = Swm2dProblem::new(Stackup::paper_baseline(), GigaHertz::new(5.0).into())?;
/// let flat = Profile1d::flat(16, 5.0e-6);
/// let result = problem.solve(&flat)?;
/// assert!((result.enhancement_factor() - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Swm2dProblem {
    stack: Stackup,
    frequency: Frequency,
    solver: SolverKind,
    assembly: AssemblyScheme,
    kernel_eval: KernelEval,
    assembly_parallelism: AssemblyParallelism,
}

impl Swm2dProblem {
    /// Creates a 2D problem for a stack at one frequency.
    ///
    /// # Errors
    ///
    /// Returns [`SwmError::InvalidConfiguration`] for a non-positive frequency.
    pub fn new(stack: Stackup, frequency: Frequency) -> Result<Self, SwmError> {
        if frequency.value() <= 0.0 {
            return Err(SwmError::InvalidConfiguration(
                "the simulation frequency must be positive".into(),
            ));
        }
        Ok(Self {
            stack,
            frequency,
            solver: SolverKind::DirectLu,
            assembly: AssemblyScheme::default(),
            kernel_eval: KernelEval::default(),
            assembly_parallelism: AssemblyParallelism::default(),
        })
    }

    /// Selects the linear solver.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Selects the near-field assembly scheme (defaults to the locally
    /// corrected scheme).
    pub fn with_assembly(mut self, assembly: AssemblyScheme) -> Self {
        self.assembly = assembly;
        self
    }

    /// Selects the kernel evaluation strategy (defaults to
    /// [`KernelEval::Batched`]; [`KernelEval::Scalar`] is the per-entry
    /// oracle used by equivalence tests and benchmarks).
    pub fn with_kernel_eval(mut self, kernel_eval: KernelEval) -> Self {
        self.kernel_eval = kernel_eval;
        self
    }

    /// Selects the intra-solve assembly parallelism (defaults to
    /// [`AssemblyParallelism::Serial`]); any worker count produces
    /// bit-identical matrices.
    pub fn with_assembly_parallelism(mut self, parallelism: AssemblyParallelism) -> Self {
        self.assembly_parallelism = parallelism;
        self
    }

    /// Simulation frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Absorbed power per unit transverse length of one profile realization.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn absorbed_power(&self, profile: &Profile1d) -> Result<f64, SwmError> {
        let mesh = ContourMesh::from_profile(profile);
        let g1 = PeriodicGreen2d::new(self.stack.k1(self.frequency), mesh.period());
        let g2 = PeriodicGreen2d::new(self.stack.k2(self.frequency), mesh.period());
        let system = assemble_system_2d_with(
            &mesh,
            &g1,
            &g2,
            self.stack.beta(self.frequency),
            self.stack.k1(self.frequency),
            self.assembly,
            self.kernel_eval,
            self.assembly_parallelism,
        );
        let (solution, _) = solve_system(&system.matrix, &system.rhs, self.solver)?;
        let n = system.surface_unknowns;
        Ok(absorbed_power_2d(&mesh, &solution[..n], &solution[n..]))
    }

    /// Solves the 2D problem for a profile, forming the enhancement against a
    /// flat profile with the same discretization.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve(&self, profile: &Profile1d) -> Result<LossResult, SwmError> {
        let flat = Profile1d::flat(profile.len(), profile.period());
        let reference = self.absorbed_power(&flat)?;
        let power = self.absorbed_power(profile)?;
        let analytic = {
            let sol = flat_interface(&self.stack, self.frequency);
            sol.transmission.norm_sqr() * profile.period()
                / (2.0 * self.stack.skin_depth(self.frequency).value())
        };
        Ok(LossResult::new(
            self.frequency,
            power,
            reference,
            analytic,
            0.0,
            profile.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rough_em::units::GigaHertz;

    fn sine_profile(n: usize, l: f64, amp: f64) -> Profile1d {
        Profile1d::new(
            l,
            (0..n)
                .map(|i| amp * (2.0 * std::f64::consts::PI * i as f64 / n as f64).sin())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn flat_profile_matches_analytic_power() {
        let problem =
            Swm2dProblem::new(Stackup::paper_baseline(), GigaHertz::new(5.0).into()).unwrap();
        let flat = Profile1d::flat(24, 5e-6);
        let numeric = problem.absorbed_power(&flat).unwrap();
        let sol = flat_interface(&Stackup::paper_baseline(), GigaHertz::new(5.0).into());
        let analytic = sol.transmission.norm_sqr() * 5e-6
            / (2.0
                * Stackup::paper_baseline()
                    .skin_depth(GigaHertz::new(5.0).into())
                    .value());
        let rel = (numeric - analytic).abs() / analytic;
        assert!(
            rel < 0.08,
            "numeric {numeric:.4e} vs analytic {analytic:.4e}"
        );
    }

    #[test]
    fn rough_profile_enhancement_exceeds_unity_and_grows_with_amplitude() {
        let problem =
            Swm2dProblem::new(Stackup::paper_baseline(), GigaHertz::new(5.0).into()).unwrap();
        let small = problem.solve(&sine_profile(24, 5e-6, 0.3e-6)).unwrap();
        let large = problem.solve(&sine_profile(24, 5e-6, 0.8e-6)).unwrap();
        assert!(small.enhancement_factor() > 1.0);
        assert!(large.enhancement_factor() > small.enhancement_factor());
        assert!(large.enhancement_factor() < 3.0);
    }

    #[test]
    fn invalid_frequency_rejected() {
        assert!(Swm2dProblem::new(Stackup::paper_baseline(), Frequency::new(0.0)).is_err());
    }
}
