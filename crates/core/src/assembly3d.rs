//! Assembly of the 3D SWM method-of-moments system.
//!
//! Discretizing the coupled surface integral equations (paper eq. (7)) with
//! pulse basis functions on the projected cells and point matching at the cell
//! centres gives the block system of paper eq. (9):
//!
//! ```text
//! [ ½I − D₁    β·S₁ ] [Ψ]   [Ψ_inc]
//! [ ½I + D₂   −S₂   ] [U] = [  0  ]
//! ```
//!
//! with the single-layer and double-layer interaction blocks
//!
//! ```text
//! S_ij = ∫_cell_j G_p(r_i, r') dx'dy'
//! D_ij = ∫_cell_j ∂G_p/∂n'(r_i, r')·J(r') dx'dy'
//! ```
//!
//! The free terms are `½` (the standard double-layer jump for a smooth
//! surface); the paper absorbs them differently but the flat-patch validation
//! in `swm3d.rs` pins the convention against the analytic Fresnel solution.
//!
//! How the singular (self) and near-singular (neighbour) entries are
//! integrated is selected by [`AssemblyScheme`]:
//!
//! * **Legacy** — the seed behaviour: the static self singularity on a
//!   metric-stretched rectangle, a fixed 3 × 3 Gauss rule on near neighbours,
//!   midpoint sampling elsewhere.
//! * **Locally corrected** — the `1/(4πR)` static part is integrated
//!   *analytically* over the exact tangent-plane cell parallelogram (Wilton
//!   polygon potential for `S`, signed solid angle for `D`), and the smooth
//!   remainder `G_p − 1/(4πR)` is integrated with adaptive tensor
//!   Gauss–Legendre quadrature, for every source cell within
//!   [`NearFieldPolicy::radius`] cell sizes (minimum-image distance, so the
//!   periodic seam is corrected too).
//!
//! Orthogonal to the scheme, [`KernelEval`] selects how the Ewald-summed
//! kernel itself is evaluated. The default, [`KernelEval::Batched`], is
//! **blocked row-panel assembly**: for each observation row, every far-field
//! observation–source separation (and, in the corrected scheme, every
//! fixed-rule periodic-image quadrature point of the row's near entries) is
//! gathered into a contiguous slice, evaluated in one batched kernel call
//! ([`PeriodicGreen3d::eval_batch_samples`] /
//! [`PeriodicGreen3d::eval_batch_regularized`]), and scattered into the
//! matrix. The near-field analytic statics and the adaptive smooth-remainder
//! quadrature are untouched. [`KernelEval::Scalar`] evaluates the identical
//! points one kernel call at a time and serves as the equivalence oracle
//! (agreement ≤ 1e-12 relative) and the benchmark baseline.
//!
//! Orthogonal to *both*, [`AssemblyParallelism`] spreads the row panels over
//! worker threads: rows are independent work items (each gathers, evaluates
//! and combines only its own kernel samples), computed with per-worker scratch
//! through [`crate::parallel::map_rows`] and scattered serially in row order —
//! so a parallel assembly is **bit-identical** to the serial one at any
//! thread count (pinned by tests at 1/2/4/8 threads for both schemes).

use crate::mesh::{Cell3d, PatchMesh};
use crate::nearfield::{AssemblyScheme, AssemblyStats, KernelEval, NearFieldPolicy};
use crate::parallel::{map_rows, AssemblyParallelism};
use rough_em::green::free_space::{
    inverse_r_integral_over_planar_polygon, inverse_r_integral_over_rectangle,
    smooth_kernel_3d_with_derivative, smooth_part_at_origin, solid_angle_of_planar_polygon,
};
use rough_em::green::{GreenSample, PeriodicGreen3d, SeparationVector};
use rough_numerics::complex::c64;
use rough_numerics::linalg::CMatrix;
use rough_numerics::quadrature::{gauss_legendre_on, QuadratureRule};
use rough_numerics::quadrature2d::{AdaptiveTensorGauss, QuadScratch};
use std::f64::consts::PI;

/// Evaluates gathered separations either through the batched kernel API or —
/// the oracle path — one scalar [`PeriodicGreen3d::sample`] call per entry.
pub(crate) fn eval_gathered(
    green: &PeriodicGreen3d,
    eval: KernelEval,
    seps: &[SeparationVector],
    out: &mut Vec<GreenSample>,
) {
    out.clear();
    out.resize(seps.len(), GreenSample::default());
    match eval {
        KernelEval::Batched => green.eval_batch_samples(seps, out),
        KernelEval::Scalar => {
            for (sep, slot) in seps.iter().zip(out.iter_mut()) {
                *slot = green.sample(sep.dx, sep.dy, sep.dz);
            }
        }
    }
}

/// Evaluates gathered separations of the regularized kernel (periodic-image
/// part of the corrected near field), batched or per-entry.
pub(crate) fn eval_gathered_regularized(
    green: &PeriodicGreen3d,
    eval: KernelEval,
    seps: &[SeparationVector],
    out: &mut Vec<GreenSample>,
) {
    out.clear();
    out.resize(seps.len(), GreenSample::default());
    match eval {
        KernelEval::Batched => green.eval_batch_regularized(seps, out),
        KernelEval::Scalar => {
            for (sep, slot) in seps.iter().zip(out.iter_mut()) {
                *slot = green.regularized(sep.dx, sep.dy, sep.dz);
            }
        }
    }
}

/// The assembled MOM operator blocks for one medium.
#[derive(Debug, Clone)]
pub struct MediumBlocks {
    /// Single-layer interaction matrix `S` (N × N).
    pub single_layer: CMatrix,
    /// Double-layer interaction matrix `D` (N × N).
    pub double_layer: CMatrix,
    /// Integration diagnostics of this assembly (adaptive-quadrature panel
    /// counts and depth-cap hits; all zero for the legacy scheme, which uses
    /// fixed rules only).
    pub stats: AssemblyStats,
}

/// Assembles the single- and double-layer blocks for one medium.
///
/// `green` must be the doubly-periodic kernel of that medium with the same
/// period as the mesh patch.
///
/// # Panics
///
/// Panics if the kernel period does not match the mesh patch length.
pub fn assemble_medium(
    mesh: &PatchMesh,
    green: &PeriodicGreen3d,
    scheme: AssemblyScheme,
) -> MediumBlocks {
    assemble_medium_with(
        mesh,
        green,
        scheme,
        KernelEval::default(),
        AssemblyParallelism::default(),
    )
}

/// Assembles the single- and double-layer blocks with explicit kernel
/// evaluation and parallelism strategies.
///
/// [`KernelEval::Batched`] (what [`assemble_medium`] uses) gathers the
/// far-field separations of every matrix row into one blocked kernel call;
/// [`KernelEval::Scalar`] evaluates the same points one scalar kernel call at
/// a time and is kept as the equivalence oracle and benchmark baseline. The
/// two agree to ≤ 1e-12 relative on every entry.
///
/// `parallelism` spreads the row panels over worker threads; the result is
/// bit-identical at any thread count (rows are independent and the scatter is
/// serial in row order).
///
/// # Panics
///
/// Panics if the kernel period does not match the mesh patch length.
pub fn assemble_medium_with(
    mesh: &PatchMesh,
    green: &PeriodicGreen3d,
    scheme: AssemblyScheme,
    eval: KernelEval,
    parallelism: AssemblyParallelism,
) -> MediumBlocks {
    assert!(
        (green.period() - mesh.patch_length()).abs() < 1e-9 * mesh.patch_length(),
        "Green's function period must match the mesh patch length"
    );
    match scheme {
        AssemblyScheme::Legacy => assemble_medium_legacy(mesh, green, eval, parallelism),
        AssemblyScheme::LocallyCorrected(policy) => {
            assemble_medium_corrected(mesh, green, policy, eval, parallelism)
        }
    }
}

/// Row-local gather/evaluate buffers of the legacy scheme, one per worker.
#[derive(Default)]
struct LegacyScratch {
    far_js: Vec<usize>,
    far_seps: Vec<SeparationVector>,
    far_out: Vec<GreenSample>,
    near_js: Vec<usize>,
    near_seps: Vec<SeparationVector>,
    near_out: Vec<GreenSample>,
}

/// The computed entries of one legacy row panel (row `i` owns every pair
/// `(i, j)` with `j > i`; the scatter writes both triangle halves).
struct LegacyRow {
    self_single: c64,
    /// `(j, S_ij = S_ji, D_ij, D_ji)` of the far pairs.
    far: Vec<(usize, c64, c64, c64)>,
    /// `(j, S_ij, S_ji, D_ij, D_ji)` of the near pairs.
    near: Vec<(usize, c64, c64, c64, c64)>,
}

/// The seed near-field treatment, kept as the comparison baseline. With
/// [`KernelEval::Scalar`] it reproduces the seed bit-for-bit; under the
/// batched default the same quadrature points are evaluated through the
/// batched kernel, which differs only at the summation-reassociation level
/// (≤ 1e-12 relative).
fn assemble_medium_legacy(
    mesh: &PatchMesh,
    green: &PeriodicGreen3d,
    eval: KernelEval,
    parallelism: AssemblyParallelism,
) -> MediumBlocks {
    let n = mesh.len();
    let cells = mesh.cells();
    let area = mesh.cell_area();
    let delta = mesh.cell_size();

    // Self term: ∫_cell 1/(4πR) dx'dy' handled analytically, the smooth
    // remainder (e^{jkR}−1)/(4πR) with its midpoint value jk/4π, and the
    // periodic-image contribution through the regularized kernel.
    let regular_at_zero = green.regularized(0.0, 0.0, 0.0).value;
    let smooth_at_zero = smooth_part_at_origin(green.wavenumber());

    // The fixed near rule of the legacy scheme, hoisted out of the row loop.
    let near_rule = gauss_legendre_on(3, -0.5 * delta, 0.5 * delta);
    let points_per_cell = near_rule.len() * near_rule.len();

    let rows = map_rows(
        n,
        parallelism.worker_count(),
        LegacyScratch::default,
        |i, scratch| {
            // The distance between two points of the same *tilted* cell is
            // larger than their projected separation: R² = ρᵀ(I + ∇f ∇fᵀ)ρ.
            // Diagonalizing the metric stretches the cell by the Jacobian
            // J = √(1+|∇f|²) along the gradient direction, so the analytic
            // static integral becomes the one over a Δ × JΔ rectangle divided
            // by J. Neglecting this tilt makes the self term too large by
            // O(|∇f|²), which would systematically bias the loss-enhancement
            // factor low.
            let stretch = cells[i].jacobian;
            let static_part =
                inverse_r_integral_over_rectangle(delta, delta * stretch) / (4.0 * PI * stretch);
            let self_single =
                c64::from_real(static_part) + (smooth_at_zero + regular_at_zero) * area;
            // The principal value of the double layer over the (locally flat)
            // self cell vanishes, as does the gradient of the regularized
            // kernel at the origin, so D_ii = 0.

            // Gather pass: classify each pair of the row panel as near (fixed
            // tensor-rule quadrature over the source cell, both directions) or
            // far (one midpoint kernel sample shared by (i, j) and (j, i)).
            let ci = cells[i];
            scratch.far_js.clear();
            scratch.far_seps.clear();
            scratch.near_js.clear();
            scratch.near_seps.clear();
            for (j, cj) in cells.iter().enumerate().skip(i + 1) {
                let dx = ci.x - cj.x;
                let dy = ci.y - cj.y;
                let dz = ci.z - cj.z;
                let r2 = dx * dx + dy * dy + dz * dz;

                // Near interactions: the 1/R kernel varies strongly across the
                // source cell, so a single midpoint sample biases the absorbed
                // power low on rough surfaces. Integrate over the source cell
                // with a tensor Gauss rule (tangent-plane surface
                // representation).
                let near_radius = 2.5 * delta;
                if r2 < near_radius * near_radius {
                    scratch.near_js.push(j);
                    gather_source_cell_points(&near_rule, &ci, cj, &mut scratch.near_seps);
                    gather_source_cell_points(&near_rule, cj, &ci, &mut scratch.near_seps);
                } else {
                    scratch.far_js.push(j);
                    scratch.far_seps.push(SeparationVector::new(dx, dy, dz));
                }
            }

            eval_gathered(green, eval, &scratch.far_seps, &mut scratch.far_out);
            eval_gathered(green, eval, &scratch.near_seps, &mut scratch.near_out);

            // Combine pass: fold the evaluated samples into this row's entry
            // values (the scatter into the matrix happens serially outside).
            let mut far = Vec::with_capacity(scratch.far_js.len());
            for (sample, &j) in scratch.far_out.iter().zip(&scratch.far_js) {
                let cj = cells[j];
                let s = sample.value * area;

                // ∇'G = −∇_Δ G. D_ij tests the source-cell normal n̂_j; D_ji
                // the normal n̂_i with the opposite separation (∇_Δ G is odd).
                let grad = sample.gradient;
                let dij =
                    -(grad[0] * cj.normal[0] + grad[1] * cj.normal[1] + grad[2] * cj.normal[2])
                        * (cj.jacobian * area);
                let dji =
                    (grad[0] * ci.normal[0] + grad[1] * ci.normal[1] + grad[2] * ci.normal[2])
                        * (ci.jacobian * area);
                far.push((j, s, dij, dji));
            }
            let mut near = Vec::with_capacity(scratch.near_js.len());
            for (index, &j) in scratch.near_js.iter().enumerate() {
                let block = &scratch.near_out
                    [2 * points_per_cell * index..2 * points_per_cell * (index + 1)];
                let (sij, dij) =
                    combine_source_cell(&near_rule, &cells[j], &block[..points_per_cell]);
                let (sji, dji) = combine_source_cell(&near_rule, &ci, &block[points_per_cell..]);
                near.push((j, sij, sji, dij, dji));
            }
            LegacyRow {
                self_single,
                far,
                near,
            }
        },
    );

    // Serial scatter in row order: deterministic and race-free by
    // construction, so the matrices are bit-identical at any thread count.
    let mut single = CMatrix::zeros(n, n);
    let mut double = CMatrix::zeros(n, n);
    for (i, row) in rows.iter().enumerate() {
        single[(i, i)] = row.self_single;
        for &(j, s, dij, dji) in &row.far {
            single[(i, j)] = s;
            single[(j, i)] = s;
            double[(i, j)] = dij;
            double[(j, i)] = dji;
        }
        for &(j, sij, sji, dij, dji) in &row.near {
            single[(i, j)] = sij;
            single[(j, i)] = sji;
            double[(i, j)] = dij;
            double[(j, i)] = dji;
        }
    }

    MediumBlocks {
        single_layer: single,
        double_layer: double,
        stats: AssemblyStats::default(),
    }
}

/// One near entry of a corrected row panel: the source column and the
/// (possibly periodically shifted) source-cell centre.
struct NearEntry {
    j: usize,
    src_x: f64,
    src_y: f64,
}

/// Row-local buffers of the corrected scheme, one per worker: kernel
/// gather/evaluate slices plus the adaptive-quadrature node arena.
#[derive(Default)]
struct CorrectedScratch {
    far_js: Vec<usize>,
    far_seps: Vec<SeparationVector>,
    far_out: Vec<GreenSample>,
    near_entries: Vec<NearEntry>,
    image_seps: Vec<SeparationVector>,
    image_out: Vec<GreenSample>,
    quad: QuadScratch,
}

/// The computed entries of one corrected row panel (`(j, S_ij, D_ij)`; the
/// corrected scheme integrates each direction from its own side, so a row
/// owns exactly its own matrix row).
struct CorrectedRow {
    far: Vec<(usize, c64, c64)>,
    near: Vec<(usize, c64, c64)>,
    stats: AssemblyStats,
}

/// Locally corrected assembly: analytic static extraction plus adaptive
/// quadrature of the smooth remainder on every near (minimum-image) pair.
///
/// Blocked row panels: per observation row, the far-field midpoint
/// separations *and* the fixed-rule periodic-image quadrature points of every
/// near entry are gathered into contiguous slices, evaluated in one batched
/// kernel call each, and scattered back — the analytic statics and the
/// (kernel-free) adaptive remainder quadrature of the near entries are
/// untouched.
fn assemble_medium_corrected(
    mesh: &PatchMesh,
    green: &PeriodicGreen3d,
    policy: NearFieldPolicy,
    eval: KernelEval,
    parallelism: AssemblyParallelism,
) -> MediumBlocks {
    let n = mesh.len();
    let cells = mesh.cells();
    let area = mesh.cell_area();
    let delta = mesh.cell_size();
    let length = mesh.patch_length();
    let near_radius_sq = (policy.radius * delta) * (policy.radius * delta);
    let rule = NearRules::for_policy(policy);
    let image_points = rule.image.len() * rule.image.len();

    let rows = map_rows(
        n,
        parallelism.worker_count(),
        CorrectedScratch::default,
        |i, scratch| {
            let ci = cells[i];
            scratch.far_js.clear();
            scratch.far_seps.clear();
            scratch.near_entries.clear();
            scratch.image_seps.clear();
            for (j, cj) in cells.iter().enumerate() {
                if i == j {
                    gather_image_points(
                        &rule.image,
                        &ci,
                        cj,
                        cj.x,
                        cj.y,
                        delta,
                        &mut scratch.image_seps,
                    );
                    scratch.near_entries.push(NearEntry {
                        j,
                        src_x: cj.x,
                        src_y: cj.y,
                    });
                    continue;
                }
                let dx = ci.x - cj.x;
                let dy = ci.y - cj.y;
                let dz = ci.z - cj.z;
                // Minimum-image separation: cells adjacent across the periodic
                // seam are genuine near neighbours of the kernel's nearest
                // image.
                let wrap_x = (dx / length).round() * length;
                let wrap_y = (dy / length).round() * length;
                let dxw = dx - wrap_x;
                let dyw = dy - wrap_y;
                let r2 = dxw * dxw + dyw * dyw + dz * dz;

                if r2 < near_radius_sq {
                    let (src_x, src_y) = (cj.x + wrap_x, cj.y + wrap_y);
                    gather_image_points(
                        &rule.image,
                        &ci,
                        cj,
                        src_x,
                        src_y,
                        delta,
                        &mut scratch.image_seps,
                    );
                    scratch.near_entries.push(NearEntry { j, src_x, src_y });
                } else {
                    scratch.far_js.push(j);
                    scratch.far_seps.push(SeparationVector::new(dx, dy, dz));
                }
            }

            eval_gathered(green, eval, &scratch.far_seps, &mut scratch.far_out);
            eval_gathered_regularized(green, eval, &scratch.image_seps, &mut scratch.image_out);

            let mut far = Vec::with_capacity(scratch.far_js.len());
            for (sample, &j) in scratch.far_out.iter().zip(&scratch.far_js) {
                let cj = cells[j];
                let s = sample.value * area;
                let grad = sample.gradient;
                let d = -(grad[0] * cj.normal[0] + grad[1] * cj.normal[1] + grad[2] * cj.normal[2])
                    * (cj.jacobian * area);
                far.push((j, s, d));
            }
            let mut near = Vec::with_capacity(scratch.near_entries.len());
            let mut stats = AssemblyStats::default();
            for (index, entry) in scratch.near_entries.iter().enumerate() {
                let images = &scratch.image_out[image_points * index..image_points * (index + 1)];
                let (s, d) = corrected_entry(
                    green,
                    &ci,
                    &cells[entry.j],
                    entry.src_x,
                    entry.src_y,
                    delta,
                    &rule,
                    images,
                    &mut scratch.quad,
                    &mut stats,
                );
                near.push((entry.j, s, d));
            }
            CorrectedRow { far, near, stats }
        },
    );

    // Serial scatter in row order; each row owns exactly its own matrix row.
    let mut single = CMatrix::zeros(n, n);
    let mut double = CMatrix::zeros(n, n);
    let mut stats = AssemblyStats::default();
    for (i, row) in rows.iter().enumerate() {
        for &(j, s, d) in &row.far {
            single[(i, j)] = s;
            double[(i, j)] = d;
        }
        for &(j, s, d) in &row.near {
            single[(i, j)] = s;
            double[(i, j)] = d;
        }
        stats.merge(&row.stats);
    }

    MediumBlocks {
        single_layer: single,
        double_layer: double,
        stats,
    }
}

/// Quadrature rules shared by every corrected near-field entry of one
/// assembly: the adaptive rule for the rapidly varying (but cheap) free-space
/// remainder, and a fixed 3 × 3 rule (on `[-1/2, 1/2]`, scaled per cell) for
/// the smooth — but Ewald-sum-expensive — periodic-image part.
pub(crate) struct NearRules {
    pub(crate) adaptive: AdaptiveTensorGauss,
    pub(crate) image: rough_numerics::quadrature::QuadratureRule,
}

impl NearRules {
    /// The quadrature rules the corrected scheme uses for `policy` — shared
    /// with the matrix-free near-field precorrection so both paths integrate
    /// near entries identically.
    pub(crate) fn for_policy(policy: NearFieldPolicy) -> Self {
        Self {
            adaptive: AdaptiveTensorGauss::new(
                policy.order,
                NearFieldPolicy::REMAINDER_TOLERANCE,
                NearFieldPolicy::MAX_DEPTH,
            ),
            image: gauss_legendre_on(3, -0.5, 0.5),
        }
    }
}

/// Gathers the fixed-rule periodic-image quadrature separations of one
/// corrected near entry, in the exact nested order
/// [`corrected_entry`] consumes them.
pub(crate) fn gather_image_points(
    rule: &QuadratureRule,
    observation: &Cell3d,
    source: &Cell3d,
    src_x: f64,
    src_y: f64,
    delta: f64,
    out: &mut Vec<SeparationVector>,
) {
    let p = [observation.x, observation.y, observation.z];
    for (qx, _) in rule.iter() {
        for (qy, _) in rule.iter() {
            let xs = src_x + qx * delta;
            let ys = src_y + qy * delta;
            let zs = source.z + source.fx * (xs - src_x) + source.fy * (ys - src_y);
            out.push(SeparationVector::new(p[0] - xs, p[1] - ys, p[2] - zs));
        }
    }
}

/// One locally corrected matrix-entry pair `(S_ij, D_ij)`.
///
/// The source cell is represented by its tangent plane at the (possibly
/// periodically shifted) centre `(src_x, src_y, source.z)`, and the kernel is
/// split as `G_p = 1/(4πR) + (e^{jkR} − 1)/(4πR) + regularized`:
///
/// * the `1/(4πR)` static part of `S` is the analytic Wilton potential of the
///   cell parallelogram divided by `4π J` (projected measure), and the static
///   part of `D` is the signed solid angle of the parallelogram over `4π`;
/// * the free-space smooth part still varies strongly across near cells once
///   `|k|Δ ≳ 1` (the conductor side below skin depth) but costs one complex
///   exponential per point — it gets the adaptive rule, evaluated over whole
///   node blocks ([`AdaptiveTensorGauss::integrate_pair_batched`]) with the
///   fused value/derivative kernel so the `exp` work is shared;
/// * the periodic-image (`regularized`) part is analytic on the scale of the
///   patch period, so a fixed 3 × 3 rule integrates it to far below the
///   remainder tolerance; its kernel samples arrive pre-evaluated in
///   `image_samples` ([`gather_image_points`] order), so the row panel can
///   batch them together with the far field.
///
/// The adaptive outcome (panel count, depth-cap hits, achieved error) is
/// absorbed into `stats` so callers can see when the depth cap truncated the
/// refinement instead of silently accepting the result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn corrected_entry(
    green: &PeriodicGreen3d,
    observation: &Cell3d,
    source: &Cell3d,
    src_x: f64,
    src_y: f64,
    delta: f64,
    rule: &NearRules,
    image_samples: &[GreenSample],
    quad: &mut QuadScratch,
    stats: &mut AssemblyStats,
) -> (c64, c64) {
    let h = 0.5 * delta;
    let vertices = [
        [
            src_x - h,
            src_y - h,
            source.z - source.fx * h - source.fy * h,
        ],
        [
            src_x + h,
            src_y - h,
            source.z + source.fx * h - source.fy * h,
        ],
        [
            src_x + h,
            src_y + h,
            source.z + source.fx * h + source.fy * h,
        ],
        [
            src_x - h,
            src_y + h,
            source.z - source.fx * h + source.fy * h,
        ],
    ];
    let p = [observation.x, observation.y, observation.z];
    let static_single =
        inverse_r_integral_over_planar_polygon(p, &vertices) / (4.0 * PI * source.jacobian);
    let static_double = solid_angle_of_planar_polygon(p, &vertices) / (4.0 * PI);

    let k = green.wavenumber();
    let normal = source.normal;
    let jacobian = source.jacobian;
    let origin_tiny = 1e-12 * delta;

    // Periodic-image part on the fixed rule (tangent-plane lift), consuming
    // the pre-evaluated regularized samples in gather order.
    let mut image_single = c64::zero();
    let mut image_double = c64::zero();
    let mut image_index = 0;
    for (_, wx) in rule.image.iter() {
        for (_, wy) in rule.image.iter() {
            let regular = &image_samples[image_index];
            image_index += 1;
            let w = wx * wy * delta * delta;
            image_single += regular.value * w;
            image_double += -(regular.gradient[0] * normal[0]
                + regular.gradient[1] * normal[1]
                + regular.gradient[2] * normal[2])
                * (jacobian * w);
        }
    }

    // Free-space smooth part on the adaptive rule, whole node blocks at a
    // time (cheap per-point evaluations, call overhead amortized).
    let outcome = rule.adaptive.integrate_pair_batched(
        (src_x - h, src_x + h),
        (src_y - h, src_y + h),
        static_single,
        quad,
        |xs, ys, out| {
            for ((&x, &y), slot) in xs.iter().zip(ys.iter()).zip(out.iter_mut()) {
                let zs = source.z + source.fx * (x - src_x) + source.fy * (y - src_y);
                let dx = p[0] - x;
                let dy = p[1] - y;
                let dz = p[2] - zs;
                let r = (dx * dx + dy * dy + dz * dz).sqrt();
                if r < origin_tiny {
                    *slot = (smooth_kernel_3d_with_derivative(k, 0.0).0, c64::zero());
                    continue;
                }
                let (s, smooth_radial) = smooth_kernel_3d_with_derivative(k, r);
                let along_normal = (dx * normal[0] + dy * normal[1] + dz * normal[2]) / r;
                let d = -smooth_radial * (along_normal * jacobian);
                *slot = (s, d);
            }
        },
    );
    stats.absorb(&outcome);
    (
        c64::from_real(static_single) + image_single + outcome.values.0,
        c64::from_real(static_double) + image_double + outcome.values.1,
    )
}

/// Gathers the tensor-rule quadrature separations of one *near* legacy source
/// cell (surface represented by the tangent plane at the cell centre), in the
/// exact nested order [`combine_source_cell`] consumes them.
fn gather_source_cell_points(
    rule: &QuadratureRule,
    observation: &Cell3d,
    source: &Cell3d,
    out: &mut Vec<SeparationVector>,
) {
    for (qx, _) in rule.iter() {
        for (qy, _) in rule.iter() {
            let xs = source.x + qx;
            let ys = source.y + qy;
            let zs = source.z + source.fx * qx + source.fy * qy;
            out.push(SeparationVector::new(
                observation.x - xs,
                observation.y - ys,
                observation.z - zs,
            ));
        }
    }
}

/// Combines pre-evaluated kernel samples ([`gather_source_cell_points`]
/// order) into the single- and double-layer entries of one *near* legacy
/// source cell.
fn combine_source_cell(
    rule: &QuadratureRule,
    source: &Cell3d,
    samples: &[GreenSample],
) -> (c64, c64) {
    let mut s = c64::zero();
    let mut d = c64::zero();
    let mut index = 0;
    for (_, wx) in rule.iter() {
        for (_, wy) in rule.iter() {
            let sample = &samples[index];
            index += 1;
            let w = wx * wy;
            s += sample.value * w;
            let grad = sample.gradient;
            d += -(grad[0] * source.normal[0]
                + grad[1] * source.normal[1]
                + grad[2] * source.normal[2])
                * (source.jacobian * w);
        }
    }
    (s, d)
}

/// The full `2N × 2N` SWM system matrix and the incident-field right-hand side.
#[derive(Debug, Clone)]
pub struct SwmSystem {
    /// System matrix of paper eq. (9).
    pub matrix: CMatrix,
    /// Right-hand side (incident field on the upper block, zeros below).
    pub rhs: Vec<c64>,
    /// Number of surface unknowns N (the system order is 2N).
    pub surface_unknowns: usize,
    /// Merged integration diagnostics of both media assemblies.
    pub stats: AssemblyStats,
}

/// Assembles the full coupled system.
///
/// * `g1`, `g2` — periodic kernels of the dielectric (medium 1) and conductor
///   (medium 2);
/// * `beta` — the boundary-condition contrast `β = ε₁/ε₂`;
/// * `k1` — dielectric wavenumber used for the normally incident plane wave
///   `ψ_inc = e^{−j k₁ z}` evaluated on the surface;
/// * `scheme` — how the singular and near-singular entries are integrated.
pub fn assemble_system(
    mesh: &PatchMesh,
    g1: &PeriodicGreen3d,
    g2: &PeriodicGreen3d,
    beta: c64,
    k1: c64,
    scheme: AssemblyScheme,
) -> SwmSystem {
    assemble_system_with(
        mesh,
        g1,
        g2,
        beta,
        k1,
        scheme,
        KernelEval::default(),
        AssemblyParallelism::default(),
    )
}

/// Assembles the full coupled system with explicit kernel evaluation and
/// parallelism strategies (see [`assemble_medium_with`]).
#[allow(clippy::too_many_arguments)]
pub fn assemble_system_with(
    mesh: &PatchMesh,
    g1: &PeriodicGreen3d,
    g2: &PeriodicGreen3d,
    beta: c64,
    k1: c64,
    scheme: AssemblyScheme,
    eval: KernelEval,
    parallelism: AssemblyParallelism,
) -> SwmSystem {
    let n = mesh.len();
    let m1 = assemble_medium_with(mesh, g1, scheme, eval, parallelism);
    let m2 = assemble_medium_with(mesh, g2, scheme, eval, parallelism);

    let mut matrix = CMatrix::zeros(2 * n, 2 * n);
    let half = c64::from_real(0.5);
    for i in 0..n {
        for j in 0..n {
            let delta_ij = if i == j { c64::one() } else { c64::zero() };
            // Row block 1: (½I − D₁)Ψ + β S₁ U = Ψ_inc
            matrix[(i, j)] = half * delta_ij - m1.double_layer[(i, j)];
            matrix[(i, n + j)] = beta * m1.single_layer[(i, j)];
            // Row block 2: (½I + D₂)Ψ − S₂ U = 0
            matrix[(n + i, j)] = half * delta_ij + m2.double_layer[(i, j)];
            matrix[(n + i, n + j)] = -m2.single_layer[(i, j)];
        }
    }

    let mut rhs = vec![c64::zero(); 2 * n];
    for (i, cell) in mesh.cells().iter().enumerate() {
        rhs[i] = (c64::new(0.0, -1.0) * k1 * cell.z).exp();
    }

    let mut stats = m1.stats;
    stats.merge(&m2.stats);
    SwmSystem {
        matrix,
        rhs,
        surface_unknowns: n,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rough_surface::RoughSurface;

    fn small_mesh() -> PatchMesh {
        PatchMesh::from_surface(&RoughSurface::from_fn(4, 5e-6, |x, y| {
            0.2e-6
                * ((2.0 * std::f64::consts::PI * x / 5e-6).sin()
                    + (2.0 * std::f64::consts::PI * y / 5e-6).cos())
        }))
    }

    fn both_schemes() -> [AssemblyScheme; 2] {
        [AssemblyScheme::Legacy, AssemblyScheme::default()]
    }

    #[test]
    fn single_layer_is_symmetric_and_diagonally_dominant_in_magnitude() {
        let mesh = small_mesh();
        let g2 = PeriodicGreen3d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        for scheme in both_schemes() {
            let blocks = assemble_medium(&mesh, &g2, scheme);
            let n = mesh.len();
            for i in 0..n {
                for j in 0..n {
                    // Far pairs share one midpoint sample and are exactly
                    // symmetric; near pairs are integrated from each side over
                    // the tangent plane of their own source cell and may
                    // differ by a few percent on a curved surface.
                    let a = blocks.single_layer[(i, j)];
                    let b = blocks.single_layer[(j, i)];
                    assert!(
                        (a - b).abs() <= 0.15 * a.abs().max(b.abs()),
                        "{scheme:?}: S[{i}][{j}] vs S[{j}][{i}]: {a} vs {b}"
                    );
                }
                // The singular self integral dominates neighbouring
                // interactions.
                assert!(
                    blocks.single_layer[(i, i)].abs() > blocks.single_layer[(i, (i + 1) % n)].abs()
                );
            }
        }
    }

    #[test]
    fn double_layer_vanishes_for_flat_surface() {
        // On a flat patch every separation is horizontal and every normal is
        // vertical; the z-gradient of the periodic kernel at Δz = 0 vanishes
        // by symmetry, so the whole double-layer block must be ~0.
        let mesh = PatchMesh::from_surface(&RoughSurface::flat(4, 5e-6));
        let g = PeriodicGreen3d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        for scheme in both_schemes() {
            let blocks = assemble_medium(&mesh, &g, scheme);
            let scale = blocks.single_layer[(0, 0)].abs();
            for i in 0..mesh.len() {
                for j in 0..mesh.len() {
                    assert!(
                        blocks.double_layer[(i, j)].abs() < 1e-10 * scale,
                        "{scheme:?}: D[{i}][{j}] = {}",
                        blocks.double_layer[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn self_term_scales_roughly_linearly_with_cell_size() {
        // The dominant static self integral is proportional to Δ (not Δ²).
        let g = PeriodicGreen3d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        for scheme in both_schemes() {
            let coarse = assemble_medium(
                &PatchMesh::from_surface(&RoughSurface::flat(4, 5e-6)),
                &g,
                scheme,
            );
            let fine = assemble_medium(
                &PatchMesh::from_surface(&RoughSurface::flat(8, 5e-6)),
                &g,
                scheme,
            );
            let ratio = coarse.single_layer[(0, 0)].abs() / fine.single_layer[(0, 0)].abs();
            // The corrected scheme integrates the smooth remainder exactly
            // (instead of one midpoint sample), which shifts the ratio a
            // little below the legacy value at this lossy wavenumber.
            assert!(ratio > 1.55 && ratio < 2.4, "{scheme:?}: ratio = {ratio}");
        }
    }

    #[test]
    fn corrected_scheme_is_near_symmetric_across_the_periodic_seam() {
        // Cells on opposite edges of the patch are adjacent through the
        // periodic boundary. The corrected scheme integrates them as near
        // neighbours of the wrapped image, so S must stay near-symmetric and
        // close to the direct-neighbour magnitude.
        let mesh = PatchMesh::from_surface(&RoughSurface::flat(6, 5e-6));
        let g = PeriodicGreen3d::new(c64::new(1.5e6, 1.5e6), 5e-6);
        let blocks = assemble_medium(&mesh, &g, AssemblyScheme::default());
        // Row 0: cell (0, 0); its +x neighbour is cell 1, its seam neighbour
        // across x is cell 5.
        let direct = blocks.single_layer[(0, 1)];
        let seam = blocks.single_layer[(0, 5)];
        assert!(
            (direct - seam).abs() < 1e-9 * direct.abs(),
            "direct {direct} vs seam {seam}"
        );
    }

    #[test]
    fn corrected_and_legacy_static_self_terms_agree_on_flat_cells() {
        // On a flat patch the legacy metric-stretch approximation is exact, so
        // the two schemes may differ only by the remainder treatment — a
        // sub-percent effect at this low frequency.
        let mesh = PatchMesh::from_surface(&RoughSurface::flat(4, 5e-6));
        let g = PeriodicGreen3d::new(c64::new(1.0e5, 1.0e5), 5e-6);
        let legacy = assemble_medium(&mesh, &g, AssemblyScheme::Legacy);
        let corrected = assemble_medium(&mesh, &g, AssemblyScheme::default());
        let a = legacy.single_layer[(0, 0)];
        let b = corrected.single_layer[(0, 0)];
        assert!((a - b).abs() < 1e-2 * a.abs(), "{a} vs {b}");
    }

    #[test]
    fn batched_and_scalar_assembly_agree_for_both_schemes() {
        // The blocked row-panel path may differ from the per-entry oracle only
        // at the summation-reassociation level of the batched kernel.
        let mesh = small_mesh();
        // Conductor-like and dielectric-like kernels.
        for &k in &[c64::new(1.0e6, 1.0e6), c64::new(2.0e5, 0.0)] {
            let g = PeriodicGreen3d::new(k, 5e-6);
            for scheme in both_schemes() {
                let scalar = assemble_medium_with(
                    &mesh,
                    &g,
                    scheme,
                    KernelEval::Scalar,
                    AssemblyParallelism::Serial,
                );
                let batched = assemble_medium_with(
                    &mesh,
                    &g,
                    scheme,
                    KernelEval::Batched,
                    AssemblyParallelism::Serial,
                );
                // Entries that nearly cancel (e.g. far double-layer entries on
                // almost-coplanar pairs) carry rounding noise proportional to
                // the *largest* entry of their block, so that is the scale the
                // reassociation-level agreement is measured against.
                let max_abs = |m: &CMatrix| {
                    let mut max = 0.0f64;
                    for i in 0..m.rows() {
                        for j in 0..m.cols() {
                            max = max.max(m[(i, j)].abs());
                        }
                    }
                    max
                };
                let scale_s = max_abs(&scalar.single_layer);
                let scale_d = max_abs(&scalar.double_layer).max(scale_s);
                for i in 0..mesh.len() {
                    for j in 0..mesh.len() {
                        let (a, b) = (scalar.single_layer[(i, j)], batched.single_layer[(i, j)]);
                        assert!(
                            (a - b).abs() <= 1e-12 * (scale_s + a.abs()),
                            "{scheme:?} S[{i}][{j}]: {a} vs {b}"
                        );
                        let (a, b) = (scalar.double_layer[(i, j)], batched.double_layer[(i, j)]);
                        assert!(
                            (a - b).abs() <= 1e-12 * (scale_d + a.abs()),
                            "{scheme:?} D[{i}][{j}]: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_assembly_is_bit_identical_across_thread_counts() {
        // Rows are independent work items scattered serially, so the
        // assembled matrices must match the serial result bit for bit at any
        // thread count — for both schemes and both kernel evaluation paths.
        let mesh = small_mesh();
        let g = PeriodicGreen3d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        for scheme in both_schemes() {
            for eval in [KernelEval::Batched, KernelEval::Scalar] {
                let serial =
                    assemble_medium_with(&mesh, &g, scheme, eval, AssemblyParallelism::Serial);
                for threads in [1usize, 2, 4, 8] {
                    let parallel = assemble_medium_with(
                        &mesh,
                        &g,
                        scheme,
                        eval,
                        AssemblyParallelism::workers(threads),
                    );
                    for i in 0..mesh.len() {
                        for j in 0..mesh.len() {
                            let (a, b) =
                                (serial.single_layer[(i, j)], parallel.single_layer[(i, j)]);
                            assert_eq!(
                                (a.re.to_bits(), a.im.to_bits()),
                                (b.re.to_bits(), b.im.to_bits()),
                                "{scheme:?}/{eval:?} S[{i}][{j}] at {threads} threads"
                            );
                            let (a, b) =
                                (serial.double_layer[(i, j)], parallel.double_layer[(i, j)]);
                            assert_eq!(
                                (a.re.to_bits(), a.im.to_bits()),
                                (b.re.to_bits(), b.im.to_bits()),
                                "{scheme:?}/{eval:?} D[{i}][{j}] at {threads} threads"
                            );
                        }
                    }
                    assert_eq!(
                        parallel.stats, serial.stats,
                        "{scheme:?}/{eval:?} stats at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn corrected_assembly_reports_adaptive_statistics() {
        let mesh = small_mesh();
        let g = PeriodicGreen3d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        let corrected = assemble_medium(&mesh, &g, AssemblyScheme::default());
        // Every row corrects its self cell plus its near neighbours.
        assert!(corrected.stats.corrected_entries >= mesh.len());
        assert!(corrected.stats.adaptive_panels >= corrected.stats.corrected_entries);
        // On this rough conductor-side mesh a handful of entries hit the
        // depth cap with a (tiny, ~1e-10 absolute) residual error — which is
        // exactly what the stats exist to surface instead of silently
        // accepting. The achieved error must still be well below the
        // self-term scale.
        let self_scale = corrected.single_layer[(0, 0)].abs();
        assert!(
            corrected.stats.max_entry_error < 1e-2 * self_scale,
            "{:?} vs self scale {self_scale}",
            corrected.stats
        );
        // The legacy scheme uses fixed rules only: no adaptive statistics.
        let legacy = assemble_medium(&mesh, &g, AssemblyScheme::Legacy);
        assert_eq!(legacy.stats, AssemblyStats::default());
    }

    #[test]
    fn depth_capped_assembly_surfaces_the_truncation() {
        // An order-1 embedded rule cannot meet the default tolerance within
        // the depth budget on a lossy kernel; the stats must say so instead
        // of pretending convergence.
        let mesh = small_mesh();
        let g = PeriodicGreen3d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        let starved = AssemblyScheme::LocallyCorrected(NearFieldPolicy::new(2.5, 1));
        let blocks = assemble_medium(&mesh, &g, starved);
        assert!(
            !blocks.stats.all_converged(),
            "an order-1 rule at the default tolerance must hit the depth cap: {:?}",
            blocks.stats
        );
        assert!(blocks.stats.depth_cap_hits > 0);
        assert!(blocks.stats.max_entry_error > 0.0);
        // A starved rule must report *more* truncation than the default one.
        let healthy = assemble_medium(&mesh, &g, AssemblyScheme::default());
        assert!(blocks.stats.unconverged_entries >= healthy.stats.unconverged_entries);
    }

    #[test]
    fn system_dimensions_and_rhs() {
        let mesh = small_mesh();
        let g1 = PeriodicGreen3d::new(c64::new(200.0, 0.0), 5e-6);
        let g2 = PeriodicGreen3d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        let system = assemble_system(
            &mesh,
            &g1,
            &g2,
            c64::new(0.0, -1e-8),
            c64::new(200.0, 0.0),
            AssemblyScheme::Legacy,
        );
        assert_eq!(system.surface_unknowns, 16);
        assert_eq!(system.matrix.rows(), 32);
        assert_eq!(system.matrix.cols(), 32);
        assert_eq!(system.rhs.len(), 32);
        // Incident field is ~1 on the (sub-wavelength-height) surface cells.
        for i in 0..16 {
            assert!((system.rhs[i].abs() - 1.0).abs() < 1e-3);
        }
        for i in 16..32 {
            assert_eq!(system.rhs[i], c64::zero());
        }
    }

    #[test]
    #[should_panic(expected = "period must match")]
    fn mismatched_period_panics() {
        let mesh = small_mesh();
        let g = PeriodicGreen3d::new(c64::new(1.0e6, 1.0e6), 7e-6);
        let _ = assemble_medium(&mesh, &g, AssemblyScheme::default());
    }
}
