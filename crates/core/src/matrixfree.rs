//! Matrix-free (precorrected-FFT) representation of the MOM operator.
//!
//! The dense path assembles every `O(N²)` interaction entry explicitly; this
//! module evaluates the same operator as
//!
//! ```text
//! A·x = (grid part: block-Toeplitz convolution via 3-D FFT)
//!     + (near part: sparse precorrections)  + (½ I free terms)
//! ```
//!
//! exploiting that the mesh is a *uniform periodic grid* and the Ewald kernel
//! is translation invariant: `G_p(r, r') = G_p(Δx, Δy, Δz)`.
//!
//! **Layout.** The one obstacle to a pure convolution is the height
//! `z = f(x, y)`, which is not gridded. The operator therefore interpolates
//! the kernel's z-dependence on an equispaced *slab* of `m` levels spacing
//! `h` (two-sided Lagrange interpolation of order `p`,
//! [`MatrixFreePolicy::order`]):
//!
//! ```text
//! G(Δρ, z_i − z_j) ≈ Σ_{u,v} ℓ_u(z_i) ℓ_v(z_j) · C_{u−v}(Δρ),
//! C_t(Δρ) = G(Δρ, t·h)
//! ```
//!
//! so only `2m−1` distinct *generator planes* `C_t` exist (and only `m` are
//! evaluated — the kernel is even in the separation, its gradient odd). In
//! x and y the kernel is doubly periodic with the patch period, so the lateral
//! convolution is **exactly circulant at n × n — no padding**. The z axis is
//! Toeplitz and is circulant-embedded into `M = next_pow2(2m−1)` planes. One
//! matvec is then: spread the four source sets `{Ψ, −f_x Ψ, −f_y Ψ, U}` onto
//! the `M × n × n` cube with the Lagrange weights, four forward 3-D FFTs
//! ([`rough_numerics::fft::fft3_in_place`]), eight pointwise transfer
//! products (value + three gradient components × two media), four inverse
//! FFTs, and a weighted gather.
//!
//! **Precorrection.** Every pair within the corrected scheme's near radius
//! (2-D minimum-image, a superset of the dense scheme's 3-D near set) gets a
//! sparse correction `exact − grid`: `exact` is the *identical* locally
//! corrected integral the dense path computes
//! ([`crate::assembly3d`]'s analytic statics + adaptive remainder), or the
//! dense far-field midpoint formula for 2-D-near/3-D-far pairs; `grid` is the
//! slab-interpolated value read directly from the generator tables. Near
//! entries therefore match the dense operator *exactly* (up to FFT roundoff);
//! far entries carry only the slab interpolation error, which the spacing
//! rule keeps near machine precision (see [`MatrixFreePolicy::safety`]).
//!
//! The equivalence is pinned the way `KernelEval::Scalar` pins `Batched`:
//! matvec agreement on random vectors ≤ 1e-10 relative across quasi-static,
//! lossy and high-`|k|L` regimes, and end-to-end Pr/Ps agreement on the
//! Fig. 5 golden (`tests/matrixfree_equivalence.rs`).

use crate::assembly3d::{
    corrected_entry, eval_gathered, eval_gathered_regularized, gather_image_points, NearRules,
};
use crate::mesh::PatchMesh;
use crate::nearfield::{AssemblyStats, KernelEval, NearFieldPolicy};
use crate::parallel::{map_rows, AssemblyParallelism};
use rough_em::green::{GreenSample, PeriodicGreen3d, SeparationVector};
use rough_numerics::complex::c64;
use rough_numerics::fft::{fft3_in_place, Direction};
use rough_numerics::iterative::LinearOperator;
use rough_numerics::quadrature2d::QuadScratch;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Per-entry relative accuracy the slab spacing rule targets for the grid
/// (far-field) part. The default safety factor then buys several further
/// digits of margin, so whole-matvec agreement stays ≤ 1e-10 even after
/// `√N` accumulation.
const SLAB_TARGET: f64 = 1e-12;

/// Tuning knobs of the matrix-free operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixFreePolicy {
    /// Lagrange interpolation order `p` of the z slab (number of stencil
    /// nodes). Even, at least 4; the default 16 keeps the level count low
    /// while hitting ~1e-12 per-entry accuracy.
    pub order: usize,
    /// Multiplier `∈ (0, 1]` on the error-model level spacing; smaller is
    /// safer and costs more levels. The default 0.5 adds ≥ 4 digits of
    /// margin over the 1e-12 target.
    pub safety: f64,
}

impl Default for MatrixFreePolicy {
    fn default() -> Self {
        Self {
            order: 16,
            safety: 0.5,
        }
    }
}

impl MatrixFreePolicy {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.order < 4 || !self.order.is_multiple_of(2) {
            return Err(format!(
                "matrix-free interpolation order must be even and at least 4, got {}",
                self.order
            ));
        }
        if self.order > 32 {
            return Err(format!(
                "matrix-free interpolation order above 32 only adds rounding noise, got {}",
                self.order
            ));
        }
        if !(self.safety > 0.0 && self.safety <= 1.0) {
            return Err(format!(
                "matrix-free safety factor must be in (0, 1], got {}",
                self.safety
            ));
        }
        Ok(())
    }
}

/// How the MOM operator is represented during a solve — orthogonal to
/// [`crate::AssemblyScheme`] (how near entries are integrated) and
/// [`KernelEval`] (how kernel samples are evaluated).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum OperatorRepr {
    /// Explicit dense `2N × 2N` matrix (default): every entry assembled,
    /// solvable directly (LU) or iteratively.
    #[default]
    Dense,
    /// FFT-accelerated block-Toeplitz operator with sparse near-field
    /// precorrections: `O(N log N)` per matvec, Krylov solvers only.
    /// Requires the locally corrected assembly scheme.
    MatrixFree(MatrixFreePolicy),
}

impl OperatorRepr {
    /// Whether this is the matrix-free representation.
    pub fn is_matrix_free(&self) -> bool {
        matches!(self, OperatorRepr::MatrixFree(_))
    }
}

/// The equispaced z-slab shared by both media: node geometry plus the
/// per-cell Lagrange stencil (start level and `order` weights).
#[derive(Debug, Clone)]
struct SlabGrid {
    /// Number of interpolation levels `m`.
    levels: usize,
    /// FFT planes `M = next_pow2(2m−1)` (1 for a flat surface).
    planes: usize,
    /// Active stencil width (equals the policy order, or 1 when flat).
    order: usize,
    /// Per-cell stencil start level.
    starts: Vec<usize>,
    /// Per-cell Lagrange weights, `order` consecutive entries per cell.
    weights: Vec<f64>,
}

/// Relative error of centered `p`-point equispaced Lagrange interpolation of
/// the `1/R` kernel, whose nearest complex-z singularity for a far pair sits
/// at `z = ±iρ` (`ρ` = minimum far-field lateral distance). From the Hermite
/// remainder with the node polynomial `ω(z) = Π (z − z_l)` and symmetric node
/// offsets `q_j = (2j−1)h/2`:
///
/// ```text
/// err(h) ≈ |ω(0)| / |ω(iρ)| = Π_j q_j² / (ρ² + q_j²)
/// ```
///
/// The naive bound `(h/2ρ)^p` is wildly optimistic here because the outer
/// stencil nodes sit many spacings away from the evaluation point — the
/// stencil *width* `(p−1)h` competes with `ρ`, not `h` itself.
fn stencil_error(h: f64, rho: f64, order: usize) -> f64 {
    let mut err = 1.0;
    for j in 1..=order / 2 {
        let q = ((2 * j - 1) as f64 * h / 2.0).powi(2);
        err *= q / (rho * rho + q);
    }
    err
}

/// Level spacing from the two error mechanisms of slab interpolation: the
/// `e^{jk z}` oscillation (centered equispaced Lagrange error
/// `((p−1)!!)² (hk/2)^p / p!`) and the geometric `1/R` part
/// ([`stencil_error`], solved for `h` by bisection — the error is monotone in
/// `h`). Both are pinned at [`SLAB_TARGET`] and the policy's safety factor is
/// applied on top.
fn slab_spacing(order: usize, k_max: f64, rho_min: f64, safety: f64) -> f64 {
    let p = order as f64;
    let mut factorial = 1.0f64;
    let mut double_factorial = 1.0f64;
    for i in 1..=order {
        factorial *= i as f64;
        if i % 2 == 1 {
            double_factorial *= i as f64;
        }
    }
    let oscillatory =
        (SLAB_TARGET * factorial / (double_factorial * double_factorial)).powf(1.0 / p) * 2.0
            / k_max.max(f64::MIN_POSITIVE);

    let mut lo = 0.0;
    let mut hi = 4.0 * rho_min;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if stencil_error(mid, rho_min, order) <= SLAB_TARGET {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let geometric = lo;
    safety * oscillatory.min(geometric)
}

/// Builds the slab for a mesh: levels cover `[z_min, z_max]` with `p/2` ghost
/// levels on each side so every cell gets a *centered* stencil (no
/// end-of-interval Runge degradation), `m = ceil(H/h) + p + 1`.
fn build_slab(mesh: &PatchMesh, k_max: f64, rho_min: f64, policy: &MatrixFreePolicy) -> SlabGrid {
    let cells = mesh.cells();
    let mut z_min = f64::INFINITY;
    let mut z_max = f64::NEG_INFINITY;
    for cell in cells {
        z_min = z_min.min(cell.z);
        z_max = z_max.max(cell.z);
    }
    let height = z_max - z_min;

    // A flat surface needs no interpolation at all: one level, weight one.
    if height <= 1e-9 * mesh.cell_size() {
        return SlabGrid {
            levels: 1,
            planes: 1,
            order: 1,
            starts: vec![0; cells.len()],
            weights: vec![1.0; cells.len()],
        };
    }

    let p = policy.order;
    let h = slab_spacing(p, k_max, rho_min, policy.safety);
    let levels = (height / h).ceil() as usize + p + 1;
    let z0 = z_min - (p as f64 / 2.0) * h;
    let planes = (2 * levels - 1).next_power_of_two();

    let mut starts = Vec::with_capacity(cells.len());
    let mut weights = Vec::with_capacity(cells.len() * p);
    for cell in cells {
        let g = ((cell.z - z0) / h).floor() as isize;
        let s = (g - p as isize / 2 + 1).clamp(0, (levels - p) as isize) as usize;
        starts.push(s);
        for l in 0..p {
            let zl = z0 + (s + l) as f64 * h;
            let mut w = 1.0;
            for v in 0..p {
                if v == l {
                    continue;
                }
                let zv = z0 + (s + v) as f64 * h;
                w *= (cell.z - zv) / (zl - zv);
            }
            weights.push(w);
        }
    }
    SlabGrid {
        levels,
        planes,
        order: p,
        starts,
        weights,
        // `h`/`z0` are consumed here; the weights carry everything the
        // matvec needs.
    }
}

/// The four generator cubes of one medium (`M × n × n`, plane-major): kernel
/// value and the three gradient components. Spatial while the near
/// precorrections are computed, then forward-FFT'd in place for the matvec.
#[derive(Debug, Clone)]
struct MediumTables {
    val: Vec<c64>,
    gx: Vec<c64>,
    gy: Vec<c64>,
    gz: Vec<c64>,
}

/// Everything `build_tables` reads, as a hashable value: the generator
/// tables depend only on kernel × grid × slab, not on the surface heights.
/// Floats enter as IEEE-754 bit patterns so equality is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TableKey {
    k_re_bits: u64,
    k_im_bits: u64,
    period_bits: u64,
    eval: KernelEval,
    side: usize,
    delta_bits: u64,
    z_spacing_bits: u64,
    levels: usize,
    planes: usize,
}

impl TableKey {
    fn new(
        green: &PeriodicGreen3d,
        eval: KernelEval,
        side: usize,
        delta: f64,
        slab: &SlabGrid,
        z_spacing: f64,
    ) -> Self {
        let k = green.wavenumber();
        Self {
            k_re_bits: k.re.to_bits(),
            k_im_bits: k.im.to_bits(),
            period_bits: green.period().to_bits(),
            eval,
            side,
            delta_bits: delta.to_bits(),
            z_spacing_bits: z_spacing.to_bits(),
            levels: slab.levels,
            planes: slab.planes,
        }
    }
}

/// Shared cache of the *spatial* generator tables of the matrix-free
/// operator, keyed by exactly the inputs `build_tables` reads (kernel ×
/// grid × slab — never the surface heights). Dominant reuse patterns: the
/// realizations of one ensemble case share a key pair, and so do the rough
/// solve and its flat reference whenever the rough slab collapses (or two
/// realizations land on the same level count, which the deterministic
/// spacing rule makes common).
///
/// A hit returns the stored planes untouched — byte-identical to a fresh
/// `build_tables` call — so results are bit-identical with and without the
/// cache. The batch engine owns one instance per `KernelCache` and threads it
/// through [`crate::SwmOperator::with_table_cache`]; hit/miss counters feed
/// campaign cache statistics.
#[derive(Debug, Default)]
pub struct MfTableCache {
    map: Mutex<HashMap<TableKey, Arc<MediumTables>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl MfTableCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generator-table builds served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Generator-table builds that had to evaluate the kernel.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct table sets currently stored.
    pub fn entries(&self) -> usize {
        self.map.lock().expect("mf table cache poisoned").len()
    }

    /// Drops all stored tables (counters are preserved).
    pub fn clear(&self) {
        self.map.lock().expect("mf table cache poisoned").clear();
    }

    /// Returns the cached spatial tables for `key`, building and storing them
    /// on a miss. Concurrent misses may build twice; the first insert wins so
    /// every caller sees one canonical value.
    fn get_or_build(
        &self,
        key: TableKey,
        build: impl FnOnce() -> MediumTables,
    ) -> Arc<MediumTables> {
        if let Some(hit) = self.map.lock().expect("mf table cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let built = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(
            self.map
                .lock()
                .expect("mf table cache poisoned")
                .entry(key)
                .or_insert(built),
        )
    }
}

/// One sparse near-field correction: column `j`, `ΔS = S_exact − S_grid`,
/// `ΔD = D_exact − D_grid`.
type NearCorrection = (usize, c64, c64);

/// The matrix-free MOM operator of paper eq. (9): grid convolution + sparse
/// near precorrections + the `½ I` free terms. Implements
/// [`LinearOperator`], so it plugs straight into
/// [`crate::solver::solve_operator`].
#[derive(Debug, Clone)]
pub struct MatrixFreeOperator {
    /// Cells per side `n`.
    side: usize,
    /// Surface unknowns `N = n²` (operator dimension is `2N`).
    ncells: usize,
    area: f64,
    beta: c64,
    slab: SlabGrid,
    /// Spectral generator tables, media 1 and 2.
    tables: [MediumTables; 2],
    /// Sparse near corrections per medium, one row of `(j, ΔS, ΔD)` per cell.
    near: [Vec<Vec<NearCorrection>>; 2],
    /// Exact self entries `(S₁ᵢᵢ, D₁ᵢᵢ, S₂ᵢᵢ, D₂ᵢᵢ)` per cell — the raw
    /// material of the block-diagonal preconditioner.
    self_entries: Vec<[c64; 4]>,
    /// Per-cell surface slopes (source-side weights of the double layer).
    fx: Vec<f64>,
    fy: Vec<f64>,
    rhs: Vec<c64>,
    stats: AssemblyStats,
}

impl MatrixFreeOperator {
    /// Assembles the matrix-free operator for one surface realization: slab
    /// geometry, generator tables (one batched kernel evaluation per z
    /// level), near-field sparse precorrections (reusing the locally
    /// corrected integrator of the dense path, row-parallel under
    /// `parallelism`), and the incident-field right-hand side.
    ///
    /// Mirrors [`crate::assembly3d::assemble_system_with`]: `g1`/`g2` are the
    /// periodic kernels of the two media, `beta` the boundary contrast, `k1`
    /// the incident wavenumber, `policy` the near-field radius/order of the
    /// locally corrected scheme.
    ///
    /// # Panics
    ///
    /// Panics if the kernel period does not match the mesh patch length or
    /// the matrix-free policy is invalid (callers validate via
    /// [`MatrixFreePolicy::validate`] first).
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        mesh: &PatchMesh,
        g1: &PeriodicGreen3d,
        g2: &PeriodicGreen3d,
        beta: c64,
        k1: c64,
        policy: NearFieldPolicy,
        mf: MatrixFreePolicy,
        eval: KernelEval,
        parallelism: AssemblyParallelism,
    ) -> Self {
        Self::assemble_with_cache(mesh, g1, g2, beta, k1, policy, mf, eval, parallelism, None)
    }

    /// [`MatrixFreeOperator::assemble`] with the generator-table builds routed
    /// through a shared [`MfTableCache`]. The cache stores spatial tables
    /// byte-identical to a fresh build, so the assembled operator (and every
    /// downstream solve) is bit-identical with and without it; what a hit
    /// saves is the batched kernel evaluation over all `m × n × n` generator
    /// samples — the dominant setup cost of a repeated-frequency solve.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_with_cache(
        mesh: &PatchMesh,
        g1: &PeriodicGreen3d,
        g2: &PeriodicGreen3d,
        beta: c64,
        k1: c64,
        policy: NearFieldPolicy,
        mf: MatrixFreePolicy,
        eval: KernelEval,
        parallelism: AssemblyParallelism,
        table_cache: Option<&MfTableCache>,
    ) -> Self {
        assert!(
            (g1.period() - mesh.patch_length()).abs() < 1e-9 * mesh.patch_length(),
            "Green's function period must match the mesh patch length"
        );
        mf.validate().expect("matrix-free policy must be valid");

        let side = mesh.cells_per_side();
        let ncells = mesh.len();
        let cells = mesh.cells();
        let area = mesh.cell_area();
        let delta = mesh.cell_size();
        let length = mesh.patch_length();
        let near_radius_sq = (policy.radius * delta) * (policy.radius * delta);

        let k_max = g1.wavenumber().abs().max(g2.wavenumber().abs());
        let slab = build_slab(mesh, k_max, policy.radius * delta, &mf);

        // Generator tables (spatial), one batched kernel call per z level.
        let z_spacing = if slab.levels > 1 {
            // Recover the level spacing the slab was built with.
            slab_spacing(mf.order, k_max, policy.radius * delta, mf.safety)
        } else {
            0.0
        };
        let fetch = |green: &PeriodicGreen3d| -> Arc<MediumTables> {
            let build = || build_tables(green, eval, side, delta, &slab, z_spacing);
            match table_cache {
                Some(cache) => cache.get_or_build(
                    TableKey::new(green, eval, side, delta, &slab, z_spacing),
                    build,
                ),
                None => Arc::new(build()),
            }
        };
        let tables = [fetch(g1), fetch(g2)];

        // Near-field sparse precorrections: every 2-D minimum-image near pair
        // (superset of the dense 3-D near set) gets `exact − grid`.
        let rule = NearRules::for_policy(policy);
        let image_points = rule.image.len() * rule.image.len();
        let greens = [g1, g2];
        let rows = map_rows(ncells, parallelism.worker_count(), NearScratch::default, {
            let slab = &slab;
            let tables = &tables;
            move |i, scratch: &mut NearScratch| {
                let ci = cells[i];
                scratch.entries.clear();
                scratch.image_seps.clear();
                scratch.far_seps.clear();
                for (j, cj) in cells.iter().enumerate() {
                    let dx = ci.x - cj.x;
                    let dy = ci.y - cj.y;
                    let dz = ci.z - cj.z;
                    let wrap_x = (dx / length).round() * length;
                    let wrap_y = (dy / length).round() * length;
                    let dxw = dx - wrap_x;
                    let dyw = dy - wrap_y;
                    let rho2 = dxw * dxw + dyw * dyw;
                    if rho2 >= near_radius_sq {
                        continue; // far in-plane: the grid convolution is exact enough
                    }
                    let r2 = rho2 + dz * dz;
                    if i == j || r2 < near_radius_sq {
                        // Same near set and same integrator as the dense path.
                        let (src_x, src_y) = (cj.x + wrap_x, cj.y + wrap_y);
                        gather_image_points(
                            &rule.image,
                            &ci,
                            cj,
                            src_x,
                            src_y,
                            delta,
                            &mut scratch.image_seps,
                        );
                        scratch.entries.push(NearProbe {
                            j,
                            src_x,
                            src_y,
                            corrected: true,
                        });
                    } else {
                        // In-plane near but vertically far: the dense path
                        // treats this pair with the far midpoint formula.
                        scratch.far_seps.push(SeparationVector::new(dx, dy, dz));
                        scratch.entries.push(NearProbe {
                            j,
                            src_x: 0.0,
                            src_y: 0.0,
                            corrected: false,
                        });
                    }
                }

                for (m, green) in greens.iter().enumerate() {
                    eval_gathered_regularized(
                        green,
                        eval,
                        &scratch.image_seps,
                        &mut scratch.image_out[m],
                    );
                    eval_gathered(green, eval, &scratch.far_seps, &mut scratch.far_out[m]);
                }

                let mut row = NearRow::default();
                let mut image_cursor = 0;
                let mut far_cursor = 0;
                for entry in &scratch.entries {
                    let cj = &cells[entry.j];
                    for m in 0..2 {
                        let (s_exact, d_exact) = if entry.corrected {
                            corrected_entry(
                                greens[m],
                                &ci,
                                cj,
                                entry.src_x,
                                entry.src_y,
                                delta,
                                &rule,
                                &scratch.image_out[m][image_points * image_cursor
                                    ..image_points * (image_cursor + 1)],
                                &mut scratch.quad,
                                &mut row.stats,
                            )
                        } else {
                            let sample = &scratch.far_out[m][far_cursor];
                            let s = sample.value * area;
                            let grad = sample.gradient;
                            let d = -(grad[0] * cj.normal[0]
                                + grad[1] * cj.normal[1]
                                + grad[2] * cj.normal[2])
                                * (cj.jacobian * area);
                            (s, d)
                        };
                        let (s_grid, d_grid) =
                            grid_entry(&tables[m], slab, side, area, i, entry.j, cj.fx, cj.fy);
                        row.corrections[m].push((entry.j, s_exact - s_grid, d_exact - d_grid));
                        if entry.j == i {
                            row.selfs[2 * m] = s_exact;
                            row.selfs[2 * m + 1] = d_exact;
                        }
                    }
                    if entry.corrected {
                        image_cursor += 1;
                    } else {
                        far_cursor += 1;
                    }
                }
                row
            }
        });

        let mut near = [Vec::with_capacity(ncells), Vec::with_capacity(ncells)];
        let mut self_entries = Vec::with_capacity(ncells);
        let mut stats = AssemblyStats::default();
        for row in rows {
            let [n1, n2] = row.corrections;
            near[0].push(n1);
            near[1].push(n2);
            self_entries.push(row.selfs);
            stats.merge(&row.stats);
        }

        // The near corrections are settled; switch the generator tables to
        // the spectral domain for the matvec. The cached copies stay spatial,
        // so the FFT acts on this operator's private clones.
        let mut tables = [
            MediumTables::clone(&tables[0]),
            MediumTables::clone(&tables[1]),
        ];
        for table in &mut tables {
            for cube in [&mut table.val, &mut table.gx, &mut table.gy, &mut table.gz] {
                fft3_in_place(cube, slab.planes, side, side, Direction::Forward)
                    .expect("any-length FFT");
            }
        }

        let mut rhs = vec![c64::zero(); 2 * ncells];
        for (i, cell) in cells.iter().enumerate() {
            rhs[i] = (c64::new(0.0, -1.0) * k1 * cell.z).exp();
        }

        Self {
            side,
            ncells,
            area,
            beta,
            slab,
            tables,
            near,
            self_entries,
            fx: cells.iter().map(|c| c.fx).collect(),
            fy: cells.iter().map(|c| c.fy).collect(),
            rhs,
            stats,
        }
    }

    /// The incident-field right-hand side of paper eq. (9) (plane wave on the
    /// upper block, zeros below).
    pub fn rhs(&self) -> &[c64] {
        &self.rhs
    }

    /// Number of surface unknowns `N` (the operator dimension is `2N`).
    pub fn surface_unknowns(&self) -> usize {
        self.ncells
    }

    /// Merged integration diagnostics of the near-field precorrections (both
    /// media), matching the dense assembly's reporting.
    pub fn stats(&self) -> &AssemblyStats {
        &self.stats
    }

    /// Number of z-interpolation levels `m` (diagnostics; 1 for a flat
    /// surface).
    pub fn slab_levels(&self) -> usize {
        self.slab.levels
    }

    /// Number of FFT planes `M` of the circulant embedding (diagnostics).
    pub fn fft_planes(&self) -> usize {
        self.slab.planes
    }

    /// Number of stored near-field corrections (both media; diagnostics —
    /// `O(N)`, against the dense representation's `O(N²)` entries).
    pub fn near_corrections(&self) -> usize {
        self.near.iter().flatten().map(Vec::len).sum()
    }

    /// Builds the per-cell 2 × 2 block-diagonal preconditioner from the
    /// *exact* self entries: each cell's `[[½−D₁ᵢᵢ, βS₁ᵢᵢ], [½+D₂ᵢᵢ, −S₂ᵢᵢ]]`
    /// block is inverted once; applying the preconditioner is `O(N)`.
    pub fn preconditioner(&self) -> BlockDiagonalPreconditioner {
        let half = c64::from_real(0.5);
        let blocks = self
            .self_entries
            .iter()
            .map(|&[s1, d1, s2, d2]| {
                let a = half - d1;
                let b = self.beta * s1;
                let c = half + d2;
                let d = -s2;
                let det = a * d - b * c;
                [d / det, -b / det, -c / det, a / det]
            })
            .collect();
        BlockDiagonalPreconditioner {
            ncells: self.ncells,
            inverse_blocks: blocks,
        }
    }

    /// Spreads per-cell source values onto the FFT cube with the slab
    /// weights: `cube[v][iy][ix] += ℓ_v(z_j) · value_j` (each cell owns one
    /// lateral position, so there are no write conflicts).
    fn spread(&self, values: &[c64]) -> Vec<c64> {
        let nn = self.ncells;
        let p = self.slab.order;
        let mut cube = vec![c64::zero(); self.slab.planes * nn];
        for (j, &v) in values.iter().enumerate() {
            let s = self.slab.starts[j];
            for l in 0..p {
                cube[(s + l) * nn + j] += v.scale(self.slab.weights[j * p + l]);
            }
        }
        cube
    }

    /// Gathers the convolution output back to the cells with the same slab
    /// weights, scaled by the cell area (the quadrature measure of the
    /// midpoint far-field rule).
    fn gather(&self, cube: &[c64], out: &mut [c64]) {
        let nn = self.ncells;
        let p = self.slab.order;
        for (i, slot) in out.iter_mut().enumerate() {
            let s = self.slab.starts[i];
            let mut acc = c64::zero();
            for l in 0..p {
                acc += cube[(s + l) * nn + i].scale(self.slab.weights[i * p + l]);
            }
            *slot = acc.scale(self.area);
        }
    }
}

impl LinearOperator for MatrixFreeOperator {
    fn dim(&self) -> usize {
        2 * self.ncells
    }

    fn apply(&self, x: &[c64]) -> Vec<c64> {
        let n = self.ncells;
        let side = self.side;
        let planes = self.slab.planes;
        let (x1, x2) = x.split_at(n);

        // Spread the four shared source sets and transform them.
        let mut cube_u = self.spread(x2);
        let psi = x1;
        let mut cube_psi = self.spread(psi);
        let scaled_fx: Vec<c64> = psi
            .iter()
            .zip(&self.fx)
            .map(|(v, &f)| v.scale(-f))
            .collect();
        let scaled_fy: Vec<c64> = psi
            .iter()
            .zip(&self.fy)
            .map(|(v, &f)| v.scale(-f))
            .collect();
        let mut cube_fx = self.spread(&scaled_fx);
        let mut cube_fy = self.spread(&scaled_fy);
        for cube in [&mut cube_u, &mut cube_psi, &mut cube_fx, &mut cube_fy] {
            fft3_in_place(cube, planes, side, side, Direction::Forward).expect("any-length FFT");
        }

        // Pointwise transfer products per medium, then back to real space.
        // The double-layer spread sets already carry `(−f_x, −f_y, 1)`, i.e.
        // the source normal times its Jacobian, so the gathered result is
        // `Σ_j (∇G · n̂_j J_j) Ψ_j` and `D·Ψ` is its negative.
        let mut single = [vec![c64::zero(); n], vec![c64::zero(); n]];
        let mut double = [vec![c64::zero(); n], vec![c64::zero(); n]];
        for m in 0..2 {
            let t = &self.tables[m];
            let mut out_s = vec![c64::zero(); planes * n];
            let mut out_d = vec![c64::zero(); planes * n];
            for idx in 0..planes * n {
                out_s[idx] = t.val[idx] * cube_u[idx];
                out_d[idx] =
                    t.gx[idx] * cube_fx[idx] + t.gy[idx] * cube_fy[idx] + t.gz[idx] * cube_psi[idx];
            }
            fft3_in_place(&mut out_s, planes, side, side, Direction::Inverse)
                .expect("any-length FFT");
            fft3_in_place(&mut out_d, planes, side, side, Direction::Inverse)
                .expect("any-length FFT");
            self.gather(&out_s, &mut single[m]);
            self.gather(&out_d, &mut double[m]);
            for v in &mut double[m] {
                *v = -*v;
            }
            // Sparse near-field precorrections.
            for (i, row) in self.near[m].iter().enumerate() {
                for &(j, ds, dd) in row {
                    single[m][i] += ds * x2[j];
                    double[m][i] += dd * x1[j];
                }
            }
        }

        // Combine per paper eq. (9).
        let half = c64::from_real(0.5);
        let mut y = vec![c64::zero(); 2 * n];
        for i in 0..n {
            y[i] = half * x1[i] - double[0][i] + self.beta * single[0][i];
            y[n + i] = half * x1[i] + double[1][i] - single[1][i];
        }
        y
    }
}

/// Per-cell 2 × 2 block-diagonal (right) preconditioner built from the exact
/// self entries of the matrix-free operator; see
/// [`MatrixFreeOperator::preconditioner`]. Itself a [`LinearOperator`]
/// (`y = M⁻¹ x`), composed with the system operator by
/// [`crate::solver::solve_operator`].
#[derive(Debug, Clone)]
pub struct BlockDiagonalPreconditioner {
    ncells: usize,
    /// Inverted per-cell blocks, row-major `[a, b, c, d]`.
    inverse_blocks: Vec<[c64; 4]>,
}

impl LinearOperator for BlockDiagonalPreconditioner {
    fn dim(&self) -> usize {
        2 * self.ncells
    }

    fn apply(&self, x: &[c64]) -> Vec<c64> {
        let n = self.ncells;
        let mut y = vec![c64::zero(); 2 * n];
        for (i, inv) in self.inverse_blocks.iter().enumerate() {
            y[i] = inv[0] * x[i] + inv[1] * x[n + i];
            y[n + i] = inv[2] * x[i] + inv[3] * x[n + i];
        }
        y
    }
}

/// One near-pair probe collected during row classification.
struct NearProbe {
    j: usize,
    src_x: f64,
    src_y: f64,
    corrected: bool,
}

/// Row-local gather/evaluate buffers of the near-field precorrection pass.
#[derive(Default)]
struct NearScratch {
    entries: Vec<NearProbe>,
    image_seps: Vec<SeparationVector>,
    image_out: [Vec<GreenSample>; 2],
    far_seps: Vec<SeparationVector>,
    far_out: [Vec<GreenSample>; 2],
    quad: QuadScratch,
}

/// The computed near corrections of one observation row.
#[derive(Default)]
struct NearRow {
    corrections: [Vec<NearCorrection>; 2],
    /// `(S₁ᵢᵢ, D₁ᵢᵢ, S₂ᵢᵢ, D₂ᵢᵢ)` of this row's self entry.
    selfs: [c64; 4],
    stats: AssemblyStats,
}

/// Evaluates the generator planes of one medium: for `t ∈ [0, m)` the kernel
/// (and gradient) at separations `(b·Δ, a·Δ, t·h)` — one batched call per
/// plane — and fills `t < 0` by parity (`G` even, `∇G` odd, lateral indices
/// reflected mod n). The singular `(0, 0, 0)` sample is pinned to zero: only
/// self pairs read that column and their precorrection subtracts the grid
/// part exactly, so any *finite* placeholder cancels.
fn build_tables(
    green: &PeriodicGreen3d,
    eval: KernelEval,
    side: usize,
    delta: f64,
    slab: &SlabGrid,
    z_spacing: f64,
) -> MediumTables {
    let nn = side * side;
    let planes = slab.planes;
    let m = slab.levels;
    let mut val = vec![c64::zero(); planes * nn];
    let mut gx = vec![c64::zero(); planes * nn];
    let mut gy = vec![c64::zero(); planes * nn];
    let mut gz = vec![c64::zero(); planes * nn];

    let mut seps = Vec::with_capacity(nn);
    let mut out = Vec::new();
    for t in 0..m {
        seps.clear();
        for a in 0..side {
            for b in 0..side {
                if t == 0 && a == 0 && b == 0 {
                    // Singular sample: evaluate a benign stand-in, overwrite
                    // below.
                    seps.push(SeparationVector::new(delta, 0.0, 0.0));
                } else {
                    seps.push(SeparationVector::new(
                        b as f64 * delta,
                        a as f64 * delta,
                        t as f64 * z_spacing,
                    ));
                }
            }
        }
        eval_gathered(green, eval, &seps, &mut out);
        if t == 0 {
            out[0] = GreenSample::default();
        }
        let base = t * nn;
        for (offset, sample) in out.iter().enumerate() {
            val[base + offset] = sample.value;
            gx[base + offset] = sample.gradient[0];
            gy[base + offset] = sample.gradient[1];
            gz[base + offset] = sample.gradient[2];
        }
    }

    // Negative planes by parity: C₋ₜ[a][b] = Cₜ[(−a) mod n][(−b) mod n],
    // gradient negated.
    for t in 1..m {
        let dst_base = (planes - t) * nn;
        let src_base = t * nn;
        for a in 0..side {
            for b in 0..side {
                let src = src_base + ((side - a) % side) * side + ((side - b) % side);
                let dst = dst_base + a * side + b;
                val[dst] = val[src];
                gx[dst] = -gx[src];
                gy[dst] = -gy[src];
                gz[dst] = -gz[src];
            }
        }
    }

    MediumTables { val, gx, gy, gz }
}

/// The slab-interpolated (grid) value of one matrix-entry pair, read straight
/// from the spatial generator tables — exactly what the FFT convolution will
/// produce for this pair (up to FFT roundoff), and therefore what the
/// precorrection must subtract.
#[allow(clippy::too_many_arguments)]
fn grid_entry(
    tables: &MediumTables,
    slab: &SlabGrid,
    side: usize,
    area: f64,
    i: usize,
    j: usize,
    fx_j: f64,
    fy_j: f64,
) -> (c64, c64) {
    let nn = side * side;
    let (iy_i, ix_i) = (i / side, i % side);
    let (iy_j, ix_j) = (j / side, j % side);
    let pos = ((iy_i + side - iy_j) % side) * side + (ix_i + side - ix_j) % side;
    let p = slab.order;
    let si = slab.starts[i] as isize;
    let sj = slab.starts[j] as isize;
    let wi = &slab.weights[i * p..(i + 1) * p];
    let wj = &slab.weights[j * p..(j + 1) * p];
    let planes = slab.planes as isize;

    let mut s = c64::zero();
    let mut d = c64::zero();
    for (u, &wu) in wi.iter().enumerate() {
        for (v, &wv) in wj.iter().enumerate() {
            let t = si + u as isize - sj - v as isize;
            let idx = t.rem_euclid(planes) as usize * nn + pos;
            let w = wu * wv;
            s += tables.val[idx].scale(w);
            d +=
                (tables.gx[idx].scale(fx_j) + tables.gy[idx].scale(fy_j) - tables.gz[idx]).scale(w);
        }
    }
    (s.scale(area), d.scale(area))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly3d::assemble_system_with;
    use crate::nearfield::AssemblyScheme;
    use rough_surface::RoughSurface;

    fn rough_mesh(n: usize, length: f64, amplitude: f64) -> PatchMesh {
        PatchMesh::from_surface(&RoughSurface::from_fn(n, length, |x, y| {
            amplitude
                * ((2.0 * std::f64::consts::PI * x / length).sin()
                    + (2.0 * std::f64::consts::PI * y / length).cos())
        }))
    }

    /// Deterministic pseudo-random complex vectors without a RNG dependency.
    fn random_vector(dim: usize, seed: u64) -> Vec<c64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..dim).map(|_| c64::new(next(), next())).collect()
    }

    fn matvec_rel_diff(dense: &rough_numerics::linalg::CMatrix, mf: &MatrixFreeOperator) -> f64 {
        let mut worst = 0.0f64;
        for seed in 1..=3u64 {
            let x = random_vector(mf.dim(), seed);
            let reference = dense.matvec(&x);
            let fast = mf.apply(&x);
            let mut num = 0.0;
            let mut den = 0.0;
            for (a, b) in reference.iter().zip(&fast) {
                num += (*a - *b).norm_sqr();
                den += a.norm_sqr();
            }
            worst = worst.max((num / den).sqrt());
        }
        worst
    }

    fn assemble_pair(
        mesh: &PatchMesh,
        k1: c64,
        k2: c64,
        beta: c64,
    ) -> (rough_numerics::linalg::CMatrix, MatrixFreeOperator) {
        let length = mesh.patch_length();
        let g1 = PeriodicGreen3d::new(k1, length);
        let g2 = PeriodicGreen3d::new(k2, length);
        let policy = NearFieldPolicy::default();
        let dense = assemble_system_with(
            mesh,
            &g1,
            &g2,
            beta,
            k1,
            AssemblyScheme::LocallyCorrected(policy),
            KernelEval::default(),
            AssemblyParallelism::Serial,
        );
        let mf = MatrixFreeOperator::assemble(
            mesh,
            &g1,
            &g2,
            beta,
            k1,
            policy,
            MatrixFreePolicy::default(),
            KernelEval::default(),
            AssemblyParallelism::Serial,
        );
        (dense.matrix, mf)
    }

    #[test]
    fn matvec_matches_dense_in_quasi_static_regime() {
        let mesh = rough_mesh(6, 5e-6, 0.25e-6);
        let (dense, mf) = assemble_pair(
            &mesh,
            c64::new(150.0, 0.0),
            c64::new(2.0e4, 2.0e4),
            c64::new(0.0, -1e-6),
        );
        let diff = matvec_rel_diff(&dense, &mf);
        assert!(diff <= 1e-10, "quasi-static rel diff {diff:e}");
    }

    #[test]
    fn matvec_matches_dense_in_lossy_regime() {
        let mesh = rough_mesh(6, 5e-6, 0.3e-6);
        let (dense, mf) = assemble_pair(
            &mesh,
            c64::new(500.0, 0.0),
            c64::new(1.5e6, 1.5e6),
            c64::new(0.0, -1e-7),
        );
        let diff = matvec_rel_diff(&dense, &mf);
        assert!(diff <= 1e-10, "lossy rel diff {diff:e}");
    }

    #[test]
    fn matvec_matches_dense_at_high_k_times_length() {
        // |k₂|·L ≈ 28: many oscillations across the patch, the regime the
        // oscillatory term of the slab spacing rule exists for.
        let mesh = rough_mesh(6, 5e-6, 0.2e-6);
        let (dense, mf) = assemble_pair(
            &mesh,
            c64::new(800.0, 0.0),
            c64::new(4.0e6, 4.0e6),
            c64::new(0.0, -1e-7),
        );
        let diff = matvec_rel_diff(&dense, &mf);
        assert!(diff <= 1e-10, "high-|k|L rel diff {diff:e}");
    }

    #[test]
    fn flat_surface_collapses_to_a_single_level() {
        let mesh = PatchMesh::from_surface(&RoughSurface::flat(6, 5e-6));
        let (dense, mf) = assemble_pair(
            &mesh,
            c64::new(500.0, 0.0),
            c64::new(1.5e6, 1.5e6),
            c64::new(0.0, -1e-7),
        );
        assert_eq!(mf.slab_levels(), 1);
        assert_eq!(mf.fft_planes(), 1);
        let diff = matvec_rel_diff(&dense, &mf);
        assert!(diff <= 1e-10, "flat rel diff {diff:e}");
    }

    #[test]
    fn rhs_matches_dense_assembly() {
        let mesh = rough_mesh(5, 5e-6, 0.3e-6);
        let length = mesh.patch_length();
        let k1 = c64::new(500.0, 0.0);
        let g1 = PeriodicGreen3d::new(k1, length);
        let g2 = PeriodicGreen3d::new(c64::new(1.5e6, 1.5e6), length);
        let policy = NearFieldPolicy::default();
        let dense = assemble_system_with(
            &mesh,
            &g1,
            &g2,
            c64::new(0.0, -1e-7),
            k1,
            AssemblyScheme::LocallyCorrected(policy),
            KernelEval::default(),
            AssemblyParallelism::Serial,
        );
        let mf = MatrixFreeOperator::assemble(
            &mesh,
            &g1,
            &g2,
            c64::new(0.0, -1e-7),
            k1,
            policy,
            MatrixFreePolicy::default(),
            KernelEval::default(),
            AssemblyParallelism::Serial,
        );
        assert_eq!(mf.rhs().len(), dense.rhs.len());
        for (a, b) in mf.rhs().iter().zip(&dense.rhs) {
            assert!((*a - *b).abs() < 1e-14);
        }
        assert_eq!(mf.surface_unknowns(), dense.surface_unknowns);
    }

    #[test]
    fn preconditioned_krylov_solves_the_matrix_free_system() {
        use crate::solver::{solve_operator, solve_system, SolverKind};
        let mesh = rough_mesh(6, 5e-6, 0.3e-6);
        let (dense, mf) = assemble_pair(
            &mesh,
            c64::new(500.0, 0.0),
            c64::new(1.5e6, 1.5e6),
            c64::new(0.0, -1e-7),
        );
        let (x_lu, _) = solve_system(&dense, mf.rhs(), SolverKind::DirectLu).unwrap();
        let precond = mf.preconditioner();
        let (x_mf, stats) = solve_operator(
            &mf,
            mf.rhs(),
            SolverKind::Bicgstab { tolerance: 1e-12 },
            Some(&precond),
        )
        .unwrap();
        assert!(stats.iterations > 0);
        assert!(stats.relative_residual < 1e-10);
        let scale = x_lu.iter().map(|z| z.abs()).fold(0.0, f64::max);
        for (a, b) in x_lu.iter().zip(&x_mf) {
            assert!((*a - *b).abs() < 1e-8 * scale);
        }
    }

    #[test]
    fn parallel_near_correction_is_bit_identical() {
        let mesh = rough_mesh(6, 5e-6, 0.3e-6);
        let length = mesh.patch_length();
        let g1 = PeriodicGreen3d::new(c64::new(500.0, 0.0), length);
        let g2 = PeriodicGreen3d::new(c64::new(1.5e6, 1.5e6), length);
        let build = |parallelism| {
            MatrixFreeOperator::assemble(
                &mesh,
                &g1,
                &g2,
                c64::new(0.0, -1e-7),
                c64::new(500.0, 0.0),
                NearFieldPolicy::default(),
                MatrixFreePolicy::default(),
                KernelEval::default(),
                parallelism,
            )
        };
        let serial = build(AssemblyParallelism::Serial);
        let threaded = build(AssemblyParallelism::workers(4));
        let x = random_vector(serial.dim(), 7);
        let a = serial.apply(&x);
        let b = threaded.apply(&x);
        for (u, v) in a.iter().zip(&b) {
            assert_eq!(
                (u.re.to_bits(), u.im.to_bits()),
                (v.re.to_bits(), v.im.to_bits())
            );
        }
    }

    #[test]
    fn table_cache_hits_and_preserves_bit_identity() {
        let mesh = rough_mesh(6, 5e-6, 0.3e-6);
        let length = mesh.patch_length();
        let g1 = PeriodicGreen3d::new(c64::new(500.0, 0.0), length);
        let g2 = PeriodicGreen3d::new(c64::new(1.5e6, 1.5e6), length);
        let cache = MfTableCache::new();
        let build = |cache: Option<&MfTableCache>| {
            MatrixFreeOperator::assemble_with_cache(
                &mesh,
                &g1,
                &g2,
                c64::new(0.0, -1e-7),
                c64::new(500.0, 0.0),
                NearFieldPolicy::default(),
                MatrixFreePolicy::default(),
                KernelEval::default(),
                AssemblyParallelism::Serial,
                cache,
            )
        };
        let cold = build(None);
        let first = build(Some(&cache));
        // The two media have distinct wavenumbers: one miss each, no hits.
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        let second = build(Some(&cache));
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        assert_eq!(cache.entries(), 2);
        let x = random_vector(cold.dim(), 5);
        let reference = cold.apply(&x);
        for op in [&first, &second] {
            for (a, b) in reference.iter().zip(op.apply(&x)) {
                assert_eq!(
                    (a.re.to_bits(), a.im.to_bits()),
                    (b.re.to_bits(), b.im.to_bits())
                );
            }
        }
        cache.clear();
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn policy_validation() {
        assert!(MatrixFreePolicy::default().validate().is_ok());
        assert!(MatrixFreePolicy {
            order: 7,
            safety: 0.5
        }
        .validate()
        .is_err());
        assert!(MatrixFreePolicy {
            order: 2,
            safety: 0.5
        }
        .validate()
        .is_err());
        assert!(MatrixFreePolicy {
            order: 16,
            safety: 0.0
        }
        .validate()
        .is_err());
        assert!(MatrixFreePolicy {
            order: 16,
            safety: 1.5
        }
        .validate()
        .is_err());
        assert_eq!(OperatorRepr::default(), OperatorRepr::Dense);
        assert!(!OperatorRepr::Dense.is_matrix_free());
        assert!(OperatorRepr::MatrixFree(MatrixFreePolicy::default()).is_matrix_free());
    }

    #[test]
    fn near_corrections_are_sparse() {
        let mesh = rough_mesh(8, 5e-6, 0.3e-6);
        let (_, mf) = assemble_pair(
            &mesh,
            c64::new(500.0, 0.0),
            c64::new(1.5e6, 1.5e6),
            c64::new(0.0, -1e-7),
        );
        let n = mf.surface_unknowns();
        // Each cell corrects only the pairs within the near radius: far fewer
        // than the dense N² per medium.
        assert!(mf.near_corrections() < 2 * n * n / 2);
        assert!(mf.near_corrections() >= 2 * n); // at least every self pair
        assert!(mf.stats().corrected_entries >= n);
    }
}
