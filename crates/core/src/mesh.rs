//! Discretization of the doubly-periodic surface patch.
//!
//! The MOM formulation (paper §III-B) integrates over the projected `L × L`
//! plane: each square cell of side `Δ = L/n` carries one pulse basis function
//! for `ψ` and one for `u = √(1+f_x²+f_y²)·∂ψ/∂n`, with point matching at the
//! cell centre lifted onto the surface `z = f(x, y)`.

use rough_surface::{Profile1d, RoughSurface};

/// One square cell of the projected patch, lifted onto the rough surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell3d {
    /// Cell-centre x coordinate (m).
    pub x: f64,
    /// Cell-centre y coordinate (m).
    pub y: f64,
    /// Surface height at the cell centre (m).
    pub z: f64,
    /// Surface slope ∂f/∂x at the cell centre.
    pub fx: f64,
    /// Surface slope ∂f/∂y at the cell centre.
    pub fy: f64,
    /// Area stretch factor `√(1 + f_x² + f_y²)`.
    pub jacobian: f64,
    /// Unit normal (pointing up, out of the conductor into the dielectric).
    pub normal: [f64; 3],
}

/// The discretized doubly-periodic patch used by the 3D SWM solver.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchMesh {
    cells: Vec<Cell3d>,
    n: usize,
    length: f64,
}

impl PatchMesh {
    /// Builds the mesh from a sampled surface (one cell per surface sample).
    pub fn from_surface(surface: &RoughSurface) -> Self {
        let n = surface.samples_per_side();
        let delta = surface.spacing();
        let mut cells = Vec::with_capacity(n * n);
        for iy in 0..n {
            for ix in 0..n {
                let (x, y) = surface.coordinates(ix, iy);
                let z = surface.height(ix as isize, iy as isize);
                let fx = surface.slope_x(ix as isize, iy as isize);
                let fy = surface.slope_y(ix as isize, iy as isize);
                let jacobian = (1.0 + fx * fx + fy * fy).sqrt();
                let normal = [-fx / jacobian, -fy / jacobian, 1.0 / jacobian];
                cells.push(Cell3d {
                    x: x + 0.5 * delta,
                    y: y + 0.5 * delta,
                    z,
                    fx,
                    fy,
                    jacobian,
                    normal,
                });
            }
        }
        Self {
            cells,
            n,
            length: surface.patch_length(),
        }
    }

    /// Cells in row-major order.
    pub fn cells(&self) -> &[Cell3d] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the mesh has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cells per side.
    pub fn cells_per_side(&self) -> usize {
        self.n
    }

    /// Patch side length (m).
    pub fn patch_length(&self) -> f64 {
        self.length
    }

    /// Cell side length Δ (m).
    pub fn cell_size(&self) -> f64 {
        self.length / self.n as f64
    }

    /// Projected area of one cell, Δ² (m²).
    pub fn cell_area(&self) -> f64 {
        let d = self.cell_size();
        d * d
    }

    /// Total projected patch area L² (m²).
    pub fn patch_area(&self) -> f64 {
        self.length * self.length
    }
}

/// One segment of a discretized 1D profile (2D SWM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment2d {
    /// Segment-centre x coordinate (m).
    pub x: f64,
    /// Surface height at the segment centre (m).
    pub z: f64,
    /// Surface slope df/dx at the segment centre.
    pub fx: f64,
    /// Arc-length stretch factor `√(1 + f_x²)`.
    pub jacobian: f64,
    /// Unit normal (pointing up).
    pub normal: [f64; 2],
}

/// The discretized periodic contour used by the 2D SWM solver.
#[derive(Debug, Clone, PartialEq)]
pub struct ContourMesh {
    segments: Vec<Segment2d>,
    length: f64,
}

impl ContourMesh {
    /// Builds the contour mesh from a 1D profile (one segment per sample).
    pub fn from_profile(profile: &Profile1d) -> Self {
        let n = profile.len();
        let delta = profile.spacing();
        let mut segments = Vec::with_capacity(n);
        for i in 0..n {
            let x = (i as f64 + 0.5) * delta;
            let z = profile.height(i as isize);
            let fx = profile.slope(i as isize);
            let jacobian = (1.0 + fx * fx).sqrt();
            segments.push(Segment2d {
                x,
                z,
                fx,
                jacobian,
                normal: [-fx / jacobian, 1.0 / jacobian],
            });
        }
        Self {
            segments,
            length: profile.period(),
        }
    }

    /// Segments in order of increasing x.
    pub fn segments(&self) -> &[Segment2d] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` if the contour has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Period along x (m).
    pub fn period(&self) -> f64 {
        self.length
    }

    /// Segment width Δ (m).
    pub fn segment_width(&self) -> f64 {
        self.length / self.segments.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_surface_mesh_geometry() {
        let mesh = PatchMesh::from_surface(&RoughSurface::flat(4, 4e-6));
        assert_eq!(mesh.len(), 16);
        assert_eq!(mesh.cells_per_side(), 4);
        assert!((mesh.cell_size() - 1e-6).abs() < 1e-18);
        assert!((mesh.cell_area() - 1e-12).abs() < 1e-24);
        assert!((mesh.patch_area() - 16e-12).abs() < 1e-24);
        for c in mesh.cells() {
            assert_eq!(c.z, 0.0);
            assert_eq!(c.jacobian, 1.0);
            assert_eq!(c.normal, [0.0, 0.0, 1.0]);
        }
        // Cell centres are offset by half a cell.
        assert!((mesh.cells()[0].x - 0.5e-6).abs() < 1e-18);
        assert!((mesh.cells()[5].y - 1.5e-6).abs() < 1e-18);
    }

    #[test]
    fn tilted_plane_normals() {
        // f = a x: normal should be (-a, 0, 1)/sqrt(1+a^2). Avoid the periodic
        // seam by checking an interior cell.
        let a = 0.5;
        let surf = RoughSurface::from_fn(8, 8.0, |x, _| a * x);
        let mesh = PatchMesh::from_surface(&surf);
        let c = &mesh.cells()[3 + 3 * 8];
        let expected_j = (1.0 + a * a).sqrt();
        assert!((c.fx - a).abs() < 1e-12);
        assert!((c.jacobian - expected_j).abs() < 1e-12);
        assert!((c.normal[0] + a / expected_j).abs() < 1e-12);
        assert!((c.normal[2] - 1.0 / expected_j).abs() < 1e-12);
        // Normal is unit length.
        let norm: f64 = c.normal.iter().map(|v| v * v).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contour_mesh_from_profile() {
        let profile = Profile1d::new(4.0, vec![0.0, 1.0, 0.0, -1.0]).unwrap();
        let mesh = ContourMesh::from_profile(&profile);
        assert_eq!(mesh.len(), 4);
        assert!((mesh.segment_width() - 1.0).abs() < 1e-15);
        for s in mesh.segments() {
            let norm: f64 = s.normal.iter().map(|v| v * v).sum::<f64>();
            assert!((norm - 1.0).abs() < 1e-12);
            assert!(s.jacobian >= 1.0);
        }
        // slope at index 1 is (f(2)-f(0))/(2Δ) = 0
        assert!((mesh.segments()[1].fx).abs() < 1e-12);
        // slope at index 0 is (f(1)-f(-1))/(2Δ) = (1-(-1))/2 = 1
        assert!((mesh.segments()[0].fx - 1.0).abs() < 1e-12);
    }
}
