//! Error type of the SWM solvers.

use rough_surface::SurfaceError;
use std::fmt;

/// Errors produced while configuring or running an SWM simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SwmError {
    /// The problem configuration is inconsistent (bad grid, bad frequency, …).
    InvalidConfiguration(String),
    /// The supplied surface does not match the configured patch.
    SurfaceMismatch {
        /// What was expected.
        expected: String,
        /// What was supplied.
        found: String,
    },
    /// Propagated surface-construction error.
    Surface(SurfaceError),
    /// The linear solver failed (singular matrix, no convergence, …).
    LinearSolver(String),
}

impl fmt::Display for SwmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwmError::InvalidConfiguration(msg) => write!(f, "invalid SWM configuration: {msg}"),
            SwmError::SurfaceMismatch { expected, found } => {
                write!(
                    f,
                    "surface does not match the problem grid: expected {expected}, found {found}"
                )
            }
            SwmError::Surface(e) => write!(f, "surface error: {e}"),
            SwmError::LinearSolver(msg) => write!(f, "linear solver failure: {msg}"),
        }
    }
}

impl std::error::Error for SwmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwmError::Surface(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SurfaceError> for SwmError {
    fn from(e: SurfaceError) -> Self {
        SwmError::Surface(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SwmError::InvalidConfiguration("zero cells".into());
        assert!(e.to_string().contains("zero cells"));
        let e = SwmError::SurfaceMismatch {
            expected: "16 cells".into(),
            found: "8 cells".into(),
        };
        assert!(e.to_string().contains("16 cells") && e.to_string().contains("8 cells"));
        let e: SwmError = SurfaceError::InvalidGrid {
            reason: "bad".into(),
        }
        .into();
        assert!(e.to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
