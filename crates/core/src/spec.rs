//! Roughness specification: what kind of surface the SWM problem simulates.
//!
//! Mirrors paper §II: the surface is either a parameterized stochastic process
//! (Gaussian PDF with a chosen correlation function — Figs. 2–4, 6, 7) or a
//! deterministic protrusion supplied explicitly (the half-spheroid of Fig. 5).

use rough_em::units::Length;
use rough_surface::correlation::CorrelationFunction;

/// Specification of the rough interface.
#[derive(Debug, Clone, PartialEq)]
pub struct RoughnessSpec {
    cf: Option<CorrelationFunction>,
    patch_factor: f64,
    explicit_patch_length: Option<f64>,
}

impl RoughnessSpec {
    /// Stochastic roughness with a Gaussian correlation function
    /// (σ, η in any length unit convertible to [`Length`]).
    ///
    /// The default patch is `L = 5η`, the value used throughout the paper's
    /// experiments.
    pub fn gaussian(sigma: impl Into<Length>, eta: impl Into<Length>) -> Self {
        let cf = CorrelationFunction::gaussian(sigma.into().value(), eta.into().value());
        Self {
            cf: Some(cf),
            patch_factor: 5.0,
            explicit_patch_length: None,
        }
    }

    /// Stochastic roughness with an exponential correlation function.
    pub fn exponential(sigma: impl Into<Length>, eta: impl Into<Length>) -> Self {
        let cf = CorrelationFunction::exponential(sigma.into().value(), eta.into().value());
        Self {
            cf: Some(cf),
            patch_factor: 5.0,
            explicit_patch_length: None,
        }
    }

    /// Stochastic roughness with the measurement-extracted correlation function
    /// of paper eq. (12).
    pub fn measured(
        sigma: impl Into<Length>,
        eta1: impl Into<Length>,
        eta2: impl Into<Length>,
    ) -> Self {
        let cf = CorrelationFunction::measured(
            sigma.into().value(),
            eta1.into().value(),
            eta2.into().value(),
        );
        Self {
            cf: Some(cf),
            patch_factor: 5.0,
            explicit_patch_length: None,
        }
    }

    /// Stochastic roughness described by an arbitrary correlation function.
    pub fn from_correlation(cf: CorrelationFunction) -> Self {
        Self {
            cf: Some(cf),
            patch_factor: 5.0,
            explicit_patch_length: None,
        }
    }

    /// Deterministic roughness: the caller supplies the surface realization
    /// explicitly (e.g. the conducting half-spheroid of Fig. 5); only the patch
    /// length needs to be declared here.
    pub fn deterministic(patch_length: impl Into<Length>) -> Self {
        Self {
            cf: None,
            patch_factor: 5.0,
            explicit_patch_length: Some(patch_length.into().value()),
        }
    }

    /// Overrides the patch-length-to-correlation-length ratio (default 5, the
    /// paper's `L = 5η`).
    ///
    /// # Panics
    ///
    /// Panics if the factor is not positive.
    pub fn with_patch_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "patch factor must be positive");
        self.patch_factor = factor;
        self
    }

    /// Overrides the patch length explicitly.
    ///
    /// # Panics
    ///
    /// Panics if the length is not positive.
    pub fn with_patch_length(mut self, length: impl Into<Length>) -> Self {
        let l = length.into().value();
        assert!(l > 0.0, "patch length must be positive");
        self.explicit_patch_length = Some(l);
        self
    }

    /// The correlation function, if this is a stochastic specification.
    pub fn correlation(&self) -> Option<&CorrelationFunction> {
        self.cf.as_ref()
    }

    /// Returns `true` when the surface is a stochastic process (rather than a
    /// user-supplied deterministic profile).
    pub fn is_stochastic(&self) -> bool {
        self.cf.is_some()
    }

    /// The side length of the doubly-periodic patch (m).
    ///
    /// # Panics
    ///
    /// Panics for a deterministic specification without an explicit length
    /// (cannot happen through the public constructors).
    pub fn patch_length(&self) -> f64 {
        if let Some(l) = self.explicit_patch_length {
            return l;
        }
        let cf = self
            .cf
            .as_ref()
            .expect("deterministic specs always carry an explicit patch length");
        self.patch_factor * cf.correlation_length()
    }

    /// RMS height of the specification, if stochastic.
    pub fn sigma(&self) -> Option<f64> {
        self.cf.as_ref().map(|c| c.sigma())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rough_em::units::Micrometers;

    #[test]
    fn gaussian_spec_defaults_to_paper_patch() {
        let spec = RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(2.0));
        assert!(spec.is_stochastic());
        assert!((spec.patch_length() - 10e-6).abs() < 1e-18);
        assert!((spec.sigma().unwrap() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn patch_overrides() {
        let spec = RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0))
            .with_patch_factor(8.0);
        assert!((spec.patch_length() - 8e-6).abs() < 1e-18);
        let spec = spec.with_patch_length(Micrometers::new(3.0));
        assert!((spec.patch_length() - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn measured_spec_uses_effective_correlation_length() {
        let spec = RoughnessSpec::measured(
            Micrometers::new(1.0),
            Micrometers::new(1.4),
            Micrometers::new(0.53),
        );
        let expected = 5.0 * (1.4e-6f64 * 0.53e-6).sqrt();
        assert!((spec.patch_length() - expected).abs() < 1e-12 * expected);
    }

    #[test]
    fn deterministic_spec() {
        let spec = RoughnessSpec::deterministic(Micrometers::new(20.0));
        assert!(!spec.is_stochastic());
        assert!(spec.correlation().is_none());
        assert!(spec.sigma().is_none());
        assert!((spec.patch_length() - 20e-6).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "patch factor must be positive")]
    fn bad_patch_factor_panics() {
        let _ = RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0))
            .with_patch_factor(0.0);
    }
}
