//! Near-field assembly policies: how singular and near-singular MOM matrix
//! entries are integrated.
//!
//! With pulse basis functions and point matching, the accuracy bottleneck of
//! the SWM solver is not the far interactions (one midpoint sample of the
//! periodic kernel is fine there) but the *self* and *near-neighbour* entries,
//! where the `1/R` (3D) or `ln R` (2D) kernel singularity makes low-order
//! sampling systematically biased. Once the skin depth drops below the cell
//! size the bias overwhelms the physical roughness-loss trend.
//!
//! [`AssemblyScheme`] selects between the seed behaviour
//! ([`AssemblyScheme::Legacy`]) and the locally corrected scheme
//! ([`AssemblyScheme::LocallyCorrected`]): analytic integration of the static
//! singularity over the exact source-cell geometry (Wilton polygon potential
//! and solid angle in 3D, segment log-integral and subtended angle in 2D) plus
//! adaptive tensor Gauss–Legendre quadrature for the smooth remainder, applied
//! to every source cell within [`NearFieldPolicy::radius`] cell sizes of the
//! observation point — with periodic wrap-around, so cells adjacent across the
//! patch seam are corrected too.

use rough_numerics::quadrature2d::AdaptiveOutcome;

/// Integration diagnostics of one assembly: how hard the adaptive
/// smooth-remainder quadrature worked and — crucially — whether it was ever
/// truncated by its subdivision depth cap instead of reaching the tolerance.
///
/// A depth-capped entry is *not* an error (the returned value is still the
/// best available estimate, with the achieved error recorded), but silently
/// accepting it would hide a resolution problem; campaigns can assert
/// [`AssemblyStats::all_converged`] or log the worst achieved error.
///
/// Stats merge associatively and are accumulated in row order, so they are
/// identical for serial and parallel assemblies.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AssemblyStats {
    /// Locally corrected (self + near) entries integrated adaptively.
    pub corrected_entries: usize,
    /// Total adaptive panels evaluated across those entries.
    pub adaptive_panels: usize,
    /// Leaf panels accepted *only* because the depth cap was hit.
    pub depth_cap_hits: usize,
    /// Entries whose adaptive remainder did not meet the tolerance.
    pub unconverged_entries: usize,
    /// Largest per-entry achieved absolute error estimate (the embedded
    /// `|coarse − fine|` sum over the entry's accepted leaves).
    pub max_entry_error: f64,
}

impl AssemblyStats {
    /// Books one adaptive integration outcome.
    pub fn absorb(&mut self, outcome: &AdaptiveOutcome) {
        self.corrected_entries += 1;
        self.adaptive_panels += outcome.panels;
        self.depth_cap_hits += outcome.depth_cap_hits;
        if !outcome.converged {
            self.unconverged_entries += 1;
        }
        self.max_entry_error = self.max_entry_error.max(outcome.error_estimate);
    }

    /// Merges another assembly's statistics into this one.
    pub fn merge(&mut self, other: &Self) {
        self.corrected_entries += other.corrected_entries;
        self.adaptive_panels += other.adaptive_panels;
        self.depth_cap_hits += other.depth_cap_hits;
        self.unconverged_entries += other.unconverged_entries;
        self.max_entry_error = self.max_entry_error.max(other.max_entry_error);
    }

    /// `true` when every adaptive entry met the tolerance before the depth
    /// cap (vacuously true for the legacy scheme's fixed rules).
    pub fn all_converged(&self) -> bool {
        self.unconverged_entries == 0
    }
}

/// How the periodic-kernel evaluations of an assembly are executed.
///
/// Orthogonal to [`AssemblyScheme`] (which decides *what* is integrated where,
/// i.e. the numerics), this knob decides *how* the Ewald-summed kernel is
/// evaluated — it changes floating-point results only at the summation-
/// reassociation level (≤ 1e-12 relative, pinned by the equivalence tests):
///
/// * [`KernelEval::Scalar`] — one kernel evaluation per matrix entry, exactly
///   the historical code path. Kept as the oracle for equivalence tests and
///   as the baseline of the assembly benchmark.
/// * [`KernelEval::Batched`] (default) — blocked row-panel assembly: all
///   far-field observation–source separations of a matrix row (and the
///   fixed-rule periodic-image quadrature points of its corrected near
///   entries) are gathered into contiguous slices and evaluated through the
///   batched kernel API (`eval_batch_samples` / `eval_batch_regularized`),
///   which hoists the Ewald setup out of the inner loop and shares the
///   expensive `erfc`/`exp` factors across Floquet-mode classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelEval {
    /// Per-entry kernel evaluation (reference/oracle path).
    Scalar,
    /// Blocked row-panel gathering with batched kernel evaluation.
    #[default]
    Batched,
}

/// Parameters of the locally corrected near-field integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearFieldPolicy {
    /// Near-field radius in units of the cell size: source cells whose
    /// (minimum-image) centre distance from the observation point is below
    /// `radius × Δ` get the corrected treatment.
    pub radius: f64,
    /// Base Gauss–Legendre order of the adaptive remainder quadrature (the
    /// embedded error estimate uses `order + 2`).
    pub order: usize,
}

impl NearFieldPolicy {
    /// Relative tolerance of the adaptive remainder quadrature.
    pub(crate) const REMAINDER_TOLERANCE: f64 = 1e-7;
    /// Depth cap of the adaptive subdivision.
    pub(crate) const MAX_DEPTH: usize = 6;

    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not positive or the order is zero.
    pub fn new(radius: f64, order: usize) -> Self {
        assert!(radius > 0.0, "near-field radius must be positive");
        assert!(order > 0, "quadrature order must be positive");
        Self { radius, order }
    }
}

impl Default for NearFieldPolicy {
    /// The default corrects every source cell within 2.5 cell sizes with an
    /// order-4 (embedded order-6) adaptive rule — the same neighbourhood the
    /// legacy scheme treated with a fixed 3 × 3 rule, now integrated to a
    /// controlled accuracy.
    fn default() -> Self {
        Self {
            radius: 2.5,
            order: 4,
        }
    }
}

/// How the MOM matrix entries are integrated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AssemblyScheme {
    /// The seed behaviour: analytic static self term approximated on a
    /// metric-stretched rectangle, fixed low-order Gauss rules on near
    /// neighbours (no periodic wrap-around in the near test), midpoint
    /// sampling elsewhere. Kept as the comparison baseline for convergence
    /// studies and regression tests.
    Legacy,
    /// Locally corrected near-field assembly: exact analytic static integrals
    /// over the tangent-plane cell geometry plus adaptive quadrature for the
    /// smooth remainder.
    LocallyCorrected(NearFieldPolicy),
}

impl AssemblyScheme {
    /// The locally corrected scheme with default policy.
    pub fn corrected() -> Self {
        Self::LocallyCorrected(NearFieldPolicy::default())
    }

    /// Returns `true` for the locally corrected scheme.
    pub fn is_corrected(&self) -> bool {
        matches!(self, Self::LocallyCorrected(_))
    }
}

impl Default for AssemblyScheme {
    /// Locally corrected with the default [`NearFieldPolicy`].
    fn default() -> Self {
        Self::corrected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_corrected_scheme() {
        let scheme = AssemblyScheme::default();
        assert!(scheme.is_corrected());
        match scheme {
            AssemblyScheme::LocallyCorrected(policy) => {
                assert_eq!(policy.radius, 2.5);
                assert_eq!(policy.order, 4);
            }
            AssemblyScheme::Legacy => unreachable!(),
        }
        assert!(!AssemblyScheme::Legacy.is_corrected());
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        NearFieldPolicy::new(0.0, 4);
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn zero_order_rejected() {
        NearFieldPolicy::new(1.5, 0);
    }
}
