//! Intra-solve assembly parallelism: the worker-count knob and the
//! deterministic row mapper the assemblies are built on.
//!
//! The MOM system matrix is embarrassingly parallel across observation rows:
//! every row panel gathers, evaluates and combines its own kernel samples
//! without reading any other row's state. [`map_rows`] exploits that by
//! farming row indices to a sized set of scoped worker threads and collecting
//! the per-row results *in row order*, so the caller's scatter loop — and
//! therefore the assembled matrix — is **bit-identical** at any thread count:
//! each row's values are computed by exactly one worker with row-local
//! scratch, and the scatter happens serially in a fixed order.
//!
//! [`AssemblyParallelism`] is the user-facing knob, threaded through
//! [`crate::SwmProblemBuilder::assembly_parallelism`] and
//! [`crate::swm2d::Swm2dProblem::with_assembly_parallelism`]. The
//! `ROUGHSIM_ASSEMBLY_THREADS` environment variable (mirroring the engine's
//! `ROUGHSIM_EXECUTOR`) overrides whatever a driver configured — see
//! [`AssemblyParallelism::from_env`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the intra-solve assembly worker count
/// (`serial`, or a thread count; `0` means one per hardware core).
pub const ASSEMBLY_THREADS_ENV: &str = "ROUGHSIM_ASSEMBLY_THREADS";

/// How many threads one assembly call spreads its row panels over.
///
/// Orthogonal to [`crate::AssemblyScheme`] and [`crate::KernelEval`]: the
/// knob changes wall-clock time only — parallel and serial assemblies are
/// bit-identical, because every row is computed independently and scattered
/// in a fixed order (pinned by tests at 1/2/4/8 threads for both schemes).
///
/// The default is [`AssemblyParallelism::Serial`] so standalone solves keep
/// their historical behaviour; the batch engine picks a worker count from its
/// core budget (executor units × assembly threads ≤ cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssemblyParallelism {
    /// Single-threaded assembly (the historical behaviour).
    #[default]
    Serial,
    /// Row panels spread over this many worker threads (≥ 2; a count of 1 is
    /// normalized to [`AssemblyParallelism::Serial`] by the constructors).
    Threads(usize),
}

impl AssemblyParallelism {
    /// A parallelism of `workers` threads: `0` means one per hardware core,
    /// `1` is [`AssemblyParallelism::Serial`].
    pub fn workers(workers: usize) -> Self {
        let workers = if workers == 0 {
            available_cores()
        } else {
            workers
        };
        if workers <= 1 {
            Self::Serial
        } else {
            Self::Threads(workers)
        }
    }

    /// The worker-thread count this knob resolves to (≥ 1).
    pub fn worker_count(&self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Threads(n) => (*n).max(1),
        }
    }

    /// Parses an override value: `serial`, or a worker count (`0` = one per
    /// hardware core). Returns `None` for anything unrecognizable.
    pub fn parse(value: &str) -> Option<Self> {
        match value.trim() {
            "" => None,
            "serial" => Some(Self::Serial),
            n => n.parse::<usize>().ok().map(Self::workers),
        }
    }

    /// The `ROUGHSIM_ASSEMBLY_THREADS` override, when set and well-formed.
    ///
    /// Drivers and the batch engine consult this *after* computing their own
    /// default, so the variable wins everywhere — mirroring how
    /// `ROUGHSIM_EXECUTOR` selects the unit executor.
    pub fn from_env() -> Option<Self> {
        std::env::var(ASSEMBLY_THREADS_ENV)
            .ok()
            .as_deref()
            .and_then(Self::parse)
    }
}

/// Hardware core count (1 when it cannot be determined).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `row_fn` over `0..rows` on `threads` scoped worker threads, returning
/// the results in row order.
///
/// Each worker owns one `make_scratch()` value for its whole lifetime, so
/// gather buffers and quadrature arenas are allocated once per worker instead
/// of once per row. Rows are handed out through an atomic cursor
/// (load-balancing uneven rows) and results are reassembled by row index, so
/// the output is independent of scheduling — the keystone of the
/// parallel-assembly determinism guarantee.
pub fn map_rows<R, S>(
    rows: usize,
    threads: usize,
    make_scratch: impl Fn() -> S + Sync,
    row_fn: impl Fn(usize, &mut S) -> R + Sync,
) -> Vec<R>
where
    R: Send,
{
    let workers = threads.min(rows).max(1);
    if workers <= 1 {
        let mut scratch = make_scratch();
        return (0..rows).map(|i| row_fn(i, &mut scratch)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(rows));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = make_scratch();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let row = cursor.fetch_add(1, Ordering::Relaxed);
                    if row >= rows {
                        break;
                    }
                    local.push((row, row_fn(row, &mut scratch)));
                }
                collected
                    .lock()
                    .expect("assembly worker panicked while holding the results lock")
                    .extend(local);
            });
        }
    });
    let mut pairs = collected
        .into_inner()
        .expect("assembly results lock poisoned");
    pairs.sort_by_key(|&(row, _)| row);
    debug_assert_eq!(pairs.len(), rows);
    pairs.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rows_preserves_order_at_any_thread_count() {
        let reference: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 4, 8] {
            let out = map_rows(97, threads, || 0usize, |i, _| i * i);
            assert_eq!(out, reference, "{threads} threads");
        }
    }

    #[test]
    fn scratch_is_per_worker_and_reused() {
        // With a serial run the single scratch counter climbs monotonically —
        // it is created once and handed back to every row.
        let serial = map_rows(
            5,
            1,
            || 0usize,
            |_, seen| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(serial, vec![1, 2, 3, 4, 5]);
        // In a parallel run every row sees *some* worker's counter: each row
        // is processed exactly once, so the counters over all workers sum to
        // the row count.
        let parallel = map_rows(
            50,
            4,
            || 0usize,
            |_, seen| {
                *seen += 1;
                1usize
            },
        );
        assert_eq!(parallel.iter().sum::<usize>(), 50);
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        assert!(map_rows(0, 4, || (), |i, ()| i).is_empty());
        assert_eq!(map_rows(1, 8, || (), |i, ()| i + 10), vec![10]);
    }

    #[test]
    fn knob_normalizes_and_parses() {
        assert_eq!(AssemblyParallelism::workers(1), AssemblyParallelism::Serial);
        assert_eq!(
            AssemblyParallelism::workers(6),
            AssemblyParallelism::Threads(6)
        );
        assert_eq!(AssemblyParallelism::Serial.worker_count(), 1);
        assert_eq!(AssemblyParallelism::Threads(4).worker_count(), 4);
        assert_eq!(
            AssemblyParallelism::parse("serial"),
            Some(AssemblyParallelism::Serial)
        );
        assert_eq!(
            AssemblyParallelism::parse("4"),
            Some(AssemblyParallelism::Threads(4))
        );
        // 0 resolves to the hardware count (≥ 1), never panics.
        assert!(AssemblyParallelism::parse("0").is_some());
        assert_eq!(AssemblyParallelism::parse("bogus"), None);
        assert_eq!(AssemblyParallelism::parse(""), None);
    }
}
