//! Assembly of the simplified 2D SWM system (surface uniform along y).
//!
//! Fig. 6 of the paper compares the full 3D SWM with a 2D formulation in which
//! the surface height varies along `x` only. The problem then reduces to a
//! periodic contour integral equation in the `(x, z)` plane with the 2D scalar
//! kernel; the block structure is identical to the 3D case:
//!
//! ```text
//! [ ½I − D₁    β·S₁ ] [Ψ]   [Ψ_inc]
//! [ ½I + D₂   −S₂   ] [U] = [  0  ]
//! ```
//!
//! with `S_ij ≈ Δ·G_p(x_i − x_j, z_i − z_j)` and `D_ij ≈ Δ·J_j·n̂_j·∇'G_p`.
//! Like the 3D path, the singular/near-singular entries follow the selected
//! [`AssemblyScheme`]: the legacy fixed rules of the seed, or the locally
//! corrected scheme — the `−ln R/(2π)` static singularity integrated
//! analytically along the exact tangent-line segment (log integral for `S`,
//! subtended angle for `D`) plus adaptive Gauss–Legendre quadrature of the
//! smooth remainder, with periodic wrap-around in the near test.

use crate::mesh::{ContourMesh, Segment2d};
use crate::nearfield::{AssemblyScheme, KernelEval, NearFieldPolicy};
use rough_em::green::free_space::{
    ln_integral_over_segment, ln_r_integral_over_segment, subtended_angle_of_segment,
};
use rough_em::green::{Green2dSample, PeriodicGreen2d, Separation2d};
use rough_numerics::complex::c64;
use rough_numerics::linalg::CMatrix;
use rough_numerics::quadrature::gauss_legendre_on;
use rough_numerics::quadrature2d::AdaptiveLineGauss;
use std::f64::consts::PI;

/// Evaluates gathered far-field separations either through the batched 2D
/// kernel API or — the oracle path — one scalar sample call per entry.
fn eval_gathered_2d(
    green: &PeriodicGreen2d,
    eval: KernelEval,
    seps: &[Separation2d],
    out: &mut Vec<Green2dSample>,
) {
    out.clear();
    out.resize(seps.len(), Green2dSample::default());
    match eval {
        KernelEval::Batched => green.eval_batch_samples(seps, out),
        KernelEval::Scalar => {
            for (sep, slot) in seps.iter().zip(out.iter_mut()) {
                *slot = green.sample(sep.dx, sep.dz);
            }
        }
    }
}

/// Assembled single-layer and double-layer blocks for one medium (2D).
#[derive(Debug, Clone)]
pub struct MediumBlocks2d {
    /// Single-layer matrix `S` (N × N).
    pub single_layer: CMatrix,
    /// Double-layer matrix `D` (N × N).
    pub double_layer: CMatrix,
}

/// Assembles the 2D blocks for one medium.
///
/// # Panics
///
/// Panics if the kernel period does not match the contour period.
pub fn assemble_medium_2d(
    mesh: &ContourMesh,
    green: &PeriodicGreen2d,
    scheme: AssemblyScheme,
) -> MediumBlocks2d {
    assemble_medium_2d_with(mesh, green, scheme, KernelEval::default())
}

/// Assembles the 2D blocks with an explicit kernel evaluation strategy.
///
/// [`KernelEval::Batched`] (the [`assemble_medium_2d`] default) gathers the
/// far-field separations of every matrix row into one blocked
/// [`PeriodicGreen2d::eval_batch_samples`] call; [`KernelEval::Scalar`]
/// evaluates the same points per entry and is the equivalence oracle. Near
/// entries (fixed-rule legacy quadrature and the corrected scheme's adaptive
/// remainder) keep their existing per-point evaluation in both modes.
///
/// # Panics
///
/// Panics if the kernel period does not match the contour period.
pub fn assemble_medium_2d_with(
    mesh: &ContourMesh,
    green: &PeriodicGreen2d,
    scheme: AssemblyScheme,
    eval: KernelEval,
) -> MediumBlocks2d {
    assert!(
        (green.period() - mesh.period()).abs() < 1e-9 * mesh.period(),
        "Green's function period must match the contour period"
    );
    match scheme {
        AssemblyScheme::Legacy => assemble_medium_2d_legacy(mesh, green, eval),
        AssemblyScheme::LocallyCorrected(policy) => {
            assemble_medium_2d_corrected(mesh, green, policy, eval)
        }
    }
}

/// The seed near-field treatment, kept as the comparison baseline (the far
/// field is gathered into row panels; near quadrature is unchanged).
fn assemble_medium_2d_legacy(
    mesh: &ContourMesh,
    green: &PeriodicGreen2d,
    eval: KernelEval,
) -> MediumBlocks2d {
    let n = mesh.len();
    let segments = mesh.segments();
    let width = mesh.segment_width();
    let mut single = CMatrix::zeros(n, n);
    let mut double = CMatrix::zeros(n, n);

    // Self term: ∫_seg −ln|x'|/(2π) dx' analytically plus the regular
    // (constant-at-the-origin) part of the periodic kernel times the width.
    let log_part = -ln_integral_over_segment(width) / (2.0 * PI);
    let self_single = c64::from_real(log_part) + green.regularized_at_origin() * width;

    let mut far_js: Vec<usize> = Vec::with_capacity(n);
    let mut far_seps: Vec<Separation2d> = Vec::with_capacity(n);
    let mut far_out: Vec<Green2dSample> = Vec::with_capacity(n);

    for i in 0..n {
        single[(i, i)] = self_single;
        let si = segments[i];
        far_js.clear();
        far_seps.clear();
        for j in 0..n {
            if i == j {
                continue;
            }
            let sj = segments[j];
            let dx = si.x - sj.x;
            let dz = si.z - sj.z;

            // Near interactions get a proper quadrature over the source
            // segment (tangent-line surface representation) instead of a
            // single midpoint sample.
            let near_radius = 2.2 * width;
            if dx * dx + dz * dz < near_radius * near_radius {
                let (sij, dij) = integrate_source_segment(green, &si, &sj, width);
                single[(i, j)] = sij;
                double[(i, j)] = dij;
                continue;
            }
            far_js.push(j);
            far_seps.push(Separation2d::new(dx, dz));
        }

        eval_gathered_2d(green, eval, &far_seps, &mut far_out);
        for (sample, &j) in far_out.iter().zip(&far_js) {
            let sj = segments[j];
            single[(i, j)] = sample.value * width;
            // ∇'G = −∇_Δ G
            let dij = -(sample.gradient[0] * sj.normal[0] + sample.gradient[1] * sj.normal[1])
                * (sj.jacobian * width);
            double[(i, j)] = dij;
        }
    }

    MediumBlocks2d {
        single_layer: single,
        double_layer: double,
    }
}

/// Locally corrected 2D assembly: analytic `ln R` extraction plus adaptive
/// quadrature of the smooth remainder on every near (minimum-image) pair,
/// with the far-field midpoint samples gathered into blocked row panels.
fn assemble_medium_2d_corrected(
    mesh: &ContourMesh,
    green: &PeriodicGreen2d,
    policy: NearFieldPolicy,
    eval: KernelEval,
) -> MediumBlocks2d {
    let n = mesh.len();
    let segments = mesh.segments();
    let width = mesh.segment_width();
    let length = mesh.period();
    let near_radius_sq = (policy.radius * width) * (policy.radius * width);
    let rule = AdaptiveLineGauss::new(
        policy.order,
        NearFieldPolicy::REMAINDER_TOLERANCE,
        NearFieldPolicy::MAX_DEPTH,
    );
    let mut single = CMatrix::zeros(n, n);
    let mut double = CMatrix::zeros(n, n);

    let mut far_js: Vec<usize> = Vec::with_capacity(n);
    let mut far_seps: Vec<Separation2d> = Vec::with_capacity(n);
    let mut far_out: Vec<Green2dSample> = Vec::with_capacity(n);

    for i in 0..n {
        let si = segments[i];
        far_js.clear();
        far_seps.clear();
        for j in 0..n {
            let sj = segments[j];
            if i == j {
                let (s, d) = corrected_entry_2d(green, &si, &sj, sj.x, width, &rule);
                single[(i, i)] = s;
                // The principal value of the double layer over the straight
                // tangent segment vanishes; keep only the smooth remainder.
                double[(i, i)] = d;
                continue;
            }
            let dx = si.x - sj.x;
            let dz = si.z - sj.z;
            let wrap = (dx / length).round() * length;
            let dxw = dx - wrap;
            if dxw * dxw + dz * dz < near_radius_sq {
                let (s, d) = corrected_entry_2d(green, &si, &sj, sj.x + wrap, width, &rule);
                single[(i, j)] = s;
                double[(i, j)] = d;
                continue;
            }
            far_js.push(j);
            far_seps.push(Separation2d::new(dx, dz));
        }

        eval_gathered_2d(green, eval, &far_seps, &mut far_out);
        for (sample, &j) in far_out.iter().zip(&far_js) {
            let sj = segments[j];
            single[(i, j)] = sample.value * width;
            let dij = -(sample.gradient[0] * sj.normal[0] + sample.gradient[1] * sj.normal[1])
                * (sj.jacobian * width);
            double[(i, j)] = dij;
        }
    }

    MediumBlocks2d {
        single_layer: single,
        double_layer: double,
    }
}

/// One locally corrected 2D matrix-entry pair `(S_ij, D_ij)`.
///
/// The source segment is its tangent line at the (possibly periodically
/// shifted) centre `(src_x, source.z)`:
///
/// * the `−ln R/(2π)` static part of `S` is the analytic segment log integral
///   divided by the segment Jacobian (projected measure);
/// * the static part of `D` is the signed subtended angle over `2π`;
/// * the remainders are integrated with the shared adaptive line rule.
fn corrected_entry_2d(
    green: &PeriodicGreen2d,
    observation: &Segment2d,
    source: &Segment2d,
    src_x: f64,
    width: f64,
    rule: &AdaptiveLineGauss,
) -> (c64, c64) {
    let h = 0.5 * width;
    let a = [src_x - h, source.z - source.fx * h];
    let b = [src_x + h, source.z + source.fx * h];
    let p = [observation.x, observation.z];
    let static_single = -ln_r_integral_over_segment(p, a, b) / (2.0 * PI * source.jacobian);
    let static_double = subtended_angle_of_segment(p, a, b) / (2.0 * PI);

    let normal = source.normal;
    let jacobian = source.jacobian;
    let outcome = rule.integrate_pair(
        (src_x - h, src_x + h),
        static_single.abs().max(width / (2.0 * PI)),
        |xs| {
            let zs = source.z + source.fx * (xs - src_x);
            let dx = p[0] - xs;
            let dz = p[1] - zs;
            let r = (dx * dx + dz * dz).sqrt();
            if r < 1e-12 * width {
                return (green.regularized_at_origin(), c64::zero());
            }
            // The log cancellation is benign (both terms are O(ln R)), so the
            // remainder can be formed directly from the full kernel.
            let sample = green.sample(dx, dz);
            let s = sample.value + c64::from_real(r.ln() / (2.0 * PI));
            // Remainder gradient: ∇_Δ(G + ln R/(2π)) = ∇_Δ G + Δ̂/(2πR).
            let gx = sample.gradient[0] + c64::from_real(dx / (2.0 * PI * r * r));
            let gz = sample.gradient[1] + c64::from_real(dz / (2.0 * PI * r * r));
            let d = -(gx * normal[0] + gz * normal[1]) * jacobian;
            (s, d)
        },
    );
    (
        c64::from_real(static_single) + outcome.values.0,
        c64::from_real(static_double) + outcome.values.1,
    )
}

/// Integrates the single- and double-layer kernels over one *near* source
/// segment with a 4-point Gauss rule (tangent-line surface representation).
/// Legacy scheme only.
fn integrate_source_segment(
    green: &PeriodicGreen2d,
    observation: &Segment2d,
    source: &Segment2d,
    width: f64,
) -> (c64, c64) {
    let rule = gauss_legendre_on(4, -0.5 * width, 0.5 * width);
    let mut s = c64::zero();
    let mut d = c64::zero();
    for (q, w) in rule.iter() {
        let xs = source.x + q;
        let zs = source.z + source.fx * q;
        let dx = observation.x - xs;
        let dz = observation.z - zs;
        let sample = green.sample(dx, dz);
        s += sample.value * w;
        d += -(sample.gradient[0] * source.normal[0] + sample.gradient[1] * source.normal[1])
            * (source.jacobian * w);
    }
    (s, d)
}

/// The assembled 2D SWM system.
#[derive(Debug, Clone)]
pub struct SwmSystem2d {
    /// System matrix (2N × 2N).
    pub matrix: CMatrix,
    /// Right-hand side.
    pub rhs: Vec<c64>,
    /// Number of surface unknowns N.
    pub surface_unknowns: usize,
}

/// Assembles the full coupled 2D system.
pub fn assemble_system_2d(
    mesh: &ContourMesh,
    g1: &PeriodicGreen2d,
    g2: &PeriodicGreen2d,
    beta: c64,
    k1: c64,
    scheme: AssemblyScheme,
) -> SwmSystem2d {
    assemble_system_2d_with(mesh, g1, g2, beta, k1, scheme, KernelEval::default())
}

/// Assembles the full coupled 2D system with an explicit kernel evaluation
/// strategy (see [`assemble_medium_2d_with`]).
pub fn assemble_system_2d_with(
    mesh: &ContourMesh,
    g1: &PeriodicGreen2d,
    g2: &PeriodicGreen2d,
    beta: c64,
    k1: c64,
    scheme: AssemblyScheme,
    eval: KernelEval,
) -> SwmSystem2d {
    let n = mesh.len();
    let m1 = assemble_medium_2d_with(mesh, g1, scheme, eval);
    let m2 = assemble_medium_2d_with(mesh, g2, scheme, eval);

    let mut matrix = CMatrix::zeros(2 * n, 2 * n);
    let half = c64::from_real(0.5);
    for i in 0..n {
        for j in 0..n {
            let delta_ij = if i == j { c64::one() } else { c64::zero() };
            matrix[(i, j)] = half * delta_ij - m1.double_layer[(i, j)];
            matrix[(i, n + j)] = beta * m1.single_layer[(i, j)];
            matrix[(n + i, j)] = half * delta_ij + m2.double_layer[(i, j)];
            matrix[(n + i, n + j)] = -m2.single_layer[(i, j)];
        }
    }

    let mut rhs = vec![c64::zero(); 2 * n];
    for (i, seg) in mesh.segments().iter().enumerate() {
        rhs[i] = (c64::new(0.0, -1.0) * k1 * seg.z).exp();
    }

    SwmSystem2d {
        matrix,
        rhs,
        surface_unknowns: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rough_surface::Profile1d;

    fn both_schemes() -> [AssemblyScheme; 2] {
        [AssemblyScheme::Legacy, AssemblyScheme::default()]
    }

    #[test]
    fn flat_contour_double_layer_vanishes() {
        let mesh = ContourMesh::from_profile(&Profile1d::flat(8, 5e-6));
        let g = PeriodicGreen2d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        for scheme in both_schemes() {
            let blocks = assemble_medium_2d(&mesh, &g, scheme);
            // The exact double layer vanishes on a flat contour; the truncated
            // Kummer series leaves a residue far below anything that could
            // compete with the ½ free term of the integral equation.
            let scale = blocks.single_layer[(0, 0)].abs();
            for i in 0..8 {
                for j in 0..8 {
                    assert!(
                        blocks.double_layer[(i, j)].abs() < 1e-5 * scale,
                        "{scheme:?}: D[{i}][{j}] = {}",
                        blocks.double_layer[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn single_layer_self_term_dominates_neighbours() {
        let profile = Profile1d::new(
            5e-6,
            (0..8)
                .map(|i| 0.3e-6 * (2.0 * std::f64::consts::PI * i as f64 / 8.0).sin())
                .collect(),
        )
        .unwrap();
        let mesh = ContourMesh::from_profile(&profile);
        let g = PeriodicGreen2d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        for scheme in both_schemes() {
            let blocks = assemble_medium_2d(&mesh, &g, scheme);
            for i in 0..8 {
                assert!(
                    blocks.single_layer[(i, i)].abs() > blocks.single_layer[(i, (i + 1) % 8)].abs(),
                    "{scheme:?}: row {i}"
                );
            }
        }
    }

    #[test]
    fn corrected_scheme_treats_the_seam_like_a_direct_neighbour() {
        let mesh = ContourMesh::from_profile(&Profile1d::flat(8, 5e-6));
        let g = PeriodicGreen2d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        let blocks = assemble_medium_2d(&mesh, &g, AssemblyScheme::default());
        // Segment 0's +x neighbour is 1; its seam neighbour is 7.
        let direct = blocks.single_layer[(0, 1)];
        let seam = blocks.single_layer[(0, 7)];
        assert!(
            (direct - seam).abs() < 1e-9 * direct.abs(),
            "direct {direct} vs seam {seam}"
        );
    }

    #[test]
    fn batched_and_scalar_assembly_agree_for_both_schemes() {
        let profile = Profile1d::new(
            5e-6,
            (0..10)
                .map(|i| 0.3e-6 * (2.0 * std::f64::consts::PI * i as f64 / 10.0).sin())
                .collect(),
        )
        .unwrap();
        let mesh = ContourMesh::from_profile(&profile);
        for &k in &[c64::new(1.0e6, 1.0e6), c64::new(2.0e5, 0.0)] {
            let g = PeriodicGreen2d::new(k, 5e-6);
            for scheme in both_schemes() {
                let scalar = assemble_medium_2d_with(&mesh, &g, scheme, KernelEval::Scalar);
                let batched = assemble_medium_2d_with(&mesh, &g, scheme, KernelEval::Batched);
                let mut scale = 0.0f64;
                for i in 0..mesh.len() {
                    for j in 0..mesh.len() {
                        scale = scale
                            .max(scalar.single_layer[(i, j)].abs())
                            .max(scalar.double_layer[(i, j)].abs());
                    }
                }
                for i in 0..mesh.len() {
                    for j in 0..mesh.len() {
                        let (a, b) = (scalar.single_layer[(i, j)], batched.single_layer[(i, j)]);
                        assert!(
                            (a - b).abs() <= 1e-12 * (scale + a.abs()),
                            "{scheme:?} S[{i}][{j}]: {a} vs {b}"
                        );
                        let (a, b) = (scalar.double_layer[(i, j)], batched.double_layer[(i, j)]);
                        assert!(
                            (a - b).abs() <= 1e-12 * (scale + a.abs()),
                            "{scheme:?} D[{i}][{j}]: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn system_shape_and_rhs() {
        let mesh = ContourMesh::from_profile(&Profile1d::flat(6, 5e-6));
        let g1 = PeriodicGreen2d::new(c64::new(200.0, 0.0), 5e-6);
        let g2 = PeriodicGreen2d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        let sys = assemble_system_2d(
            &mesh,
            &g1,
            &g2,
            c64::new(0.0, -1e-8),
            c64::new(200.0, 0.0),
            AssemblyScheme::Legacy,
        );
        assert_eq!(sys.matrix.rows(), 12);
        assert_eq!(sys.rhs.len(), 12);
        assert_eq!(sys.surface_unknowns, 6);
        for i in 0..6 {
            assert!((sys.rhs[i] - c64::one()).abs() < 1e-9);
            assert_eq!(sys.rhs[6 + i], c64::zero());
        }
    }
}
