//! Assembly of the simplified 2D SWM system (surface uniform along y).
//!
//! Fig. 6 of the paper compares the full 3D SWM with a 2D formulation in which
//! the surface height varies along `x` only. The problem then reduces to a
//! periodic contour integral equation in the `(x, z)` plane with the 2D scalar
//! kernel; the block structure is identical to the 3D case:
//!
//! ```text
//! [ ½I − D₁    β·S₁ ] [Ψ]   [Ψ_inc]
//! [ ½I + D₂   −S₂   ] [U] = [  0  ]
//! ```
//!
//! with `S_ij ≈ Δ·G_p(x_i − x_j, z_i − z_j)` and `D_ij ≈ Δ·J_j·n̂_j·∇'G_p`.
//! Like the 3D path, the singular/near-singular entries follow the selected
//! [`AssemblyScheme`]: the legacy fixed rules of the seed, or the locally
//! corrected scheme — the `−ln R/(2π)` static singularity integrated
//! analytically along the exact tangent-line segment (log integral for `S`,
//! subtended angle for `D`) plus adaptive Gauss–Legendre quadrature of the
//! smooth remainder, with periodic wrap-around in the near test.
//!
//! Like the 3D assembly, rows are independent work items:
//! [`AssemblyParallelism`] spreads them over worker threads with per-worker
//! scratch and a serial row-ordered scatter, so parallel and serial
//! assemblies are bit-identical. Under [`KernelEval::Batched`] the corrected
//! scheme's adaptive remainder also evaluates its kernel samples in node
//! blocks ([`AdaptiveLineGauss::integrate_pair_batched`] feeding
//! [`PeriodicGreen2d::eval_batch_samples`]) instead of one scalar kernel call
//! per quadrature node.

use crate::mesh::{ContourMesh, Segment2d};
use crate::nearfield::{AssemblyScheme, AssemblyStats, KernelEval, NearFieldPolicy};
use crate::parallel::{map_rows, AssemblyParallelism};
use rough_em::green::free_space::{
    ln_integral_over_segment, ln_r_integral_over_segment, subtended_angle_of_segment,
};
use rough_em::green::{Green2dSample, PeriodicGreen2d, Separation2d};
use rough_numerics::complex::c64;
use rough_numerics::linalg::CMatrix;
use rough_numerics::quadrature::gauss_legendre_on;
use rough_numerics::quadrature2d::{AdaptiveLineGauss, QuadScratch};
use std::f64::consts::PI;

/// Evaluates gathered far-field separations either through the batched 2D
/// kernel API or — the oracle path — one scalar sample call per entry.
fn eval_gathered_2d(
    green: &PeriodicGreen2d,
    eval: KernelEval,
    seps: &[Separation2d],
    out: &mut Vec<Green2dSample>,
) {
    out.clear();
    out.resize(seps.len(), Green2dSample::default());
    match eval {
        KernelEval::Batched => green.eval_batch_samples(seps, out),
        KernelEval::Scalar => {
            for (sep, slot) in seps.iter().zip(out.iter_mut()) {
                *slot = green.sample(sep.dx, sep.dz);
            }
        }
    }
}

/// Assembled single-layer and double-layer blocks for one medium (2D).
#[derive(Debug, Clone)]
pub struct MediumBlocks2d {
    /// Single-layer matrix `S` (N × N).
    pub single_layer: CMatrix,
    /// Double-layer matrix `D` (N × N).
    pub double_layer: CMatrix,
    /// Integration diagnostics (all zero for the legacy scheme).
    pub stats: AssemblyStats,
}

/// Assembles the 2D blocks for one medium.
///
/// # Panics
///
/// Panics if the kernel period does not match the contour period.
pub fn assemble_medium_2d(
    mesh: &ContourMesh,
    green: &PeriodicGreen2d,
    scheme: AssemblyScheme,
) -> MediumBlocks2d {
    assemble_medium_2d_with(
        mesh,
        green,
        scheme,
        KernelEval::default(),
        AssemblyParallelism::default(),
    )
}

/// Assembles the 2D blocks with explicit kernel evaluation and parallelism
/// strategies.
///
/// [`KernelEval::Batched`] (the [`assemble_medium_2d`] default) gathers the
/// far-field separations of every matrix row — and, for the corrected
/// scheme, the node blocks of the adaptive near-field remainder — into
/// blocked [`PeriodicGreen2d::eval_batch_samples`] calls;
/// [`KernelEval::Scalar`] evaluates the same points per entry and is the
/// equivalence oracle. `parallelism` spreads the rows over worker threads
/// with a bit-identical-to-serial guarantee.
///
/// # Panics
///
/// Panics if the kernel period does not match the contour period.
pub fn assemble_medium_2d_with(
    mesh: &ContourMesh,
    green: &PeriodicGreen2d,
    scheme: AssemblyScheme,
    eval: KernelEval,
    parallelism: AssemblyParallelism,
) -> MediumBlocks2d {
    assert!(
        (green.period() - mesh.period()).abs() < 1e-9 * mesh.period(),
        "Green's function period must match the contour period"
    );
    match scheme {
        AssemblyScheme::Legacy => assemble_medium_2d_legacy(mesh, green, eval, parallelism),
        AssemblyScheme::LocallyCorrected(policy) => {
            assemble_medium_2d_corrected(mesh, green, policy, eval, parallelism)
        }
    }
}

/// Row-local buffers of the 2D assemblies, one per worker.
#[derive(Default)]
struct Scratch2d {
    far_js: Vec<usize>,
    far_seps: Vec<Separation2d>,
    far_out: Vec<Green2dSample>,
    quad: QuadScratch,
    node_seps: Vec<Separation2d>,
    node_out: Vec<Green2dSample>,
}

/// The computed entries of one 2D row panel (each row owns its matrix row).
struct Row2d {
    /// `(j, S_ij, D_ij)` in classification order.
    entries: Vec<(usize, c64, c64)>,
    stats: AssemblyStats,
}

/// The seed near-field treatment, kept as the comparison baseline (the far
/// field is gathered into row panels; near quadrature is unchanged).
fn assemble_medium_2d_legacy(
    mesh: &ContourMesh,
    green: &PeriodicGreen2d,
    eval: KernelEval,
    parallelism: AssemblyParallelism,
) -> MediumBlocks2d {
    let n = mesh.len();
    let segments = mesh.segments();
    let width = mesh.segment_width();

    // Self term: ∫_seg −ln|x'|/(2π) dx' analytically plus the regular
    // (constant-at-the-origin) part of the periodic kernel times the width.
    let log_part = -ln_integral_over_segment(width) / (2.0 * PI);
    let self_single = c64::from_real(log_part) + green.regularized_at_origin() * width;

    let rows = map_rows(
        n,
        parallelism.worker_count(),
        Scratch2d::default,
        |i, scratch| {
            let si = segments[i];
            scratch.far_js.clear();
            scratch.far_seps.clear();
            let mut entries: Vec<(usize, c64, c64)> = Vec::with_capacity(n);
            for (j, sj) in segments.iter().enumerate() {
                if i == j {
                    entries.push((i, self_single, c64::zero()));
                    continue;
                }
                let dx = si.x - sj.x;
                let dz = si.z - sj.z;

                // Near interactions get a proper quadrature over the source
                // segment (tangent-line surface representation) instead of a
                // single midpoint sample.
                let near_radius = 2.2 * width;
                if dx * dx + dz * dz < near_radius * near_radius {
                    let (sij, dij) = integrate_source_segment(green, &si, sj, width);
                    entries.push((j, sij, dij));
                    continue;
                }
                scratch.far_js.push(j);
                scratch.far_seps.push(Separation2d::new(dx, dz));
            }

            eval_gathered_2d(green, eval, &scratch.far_seps, &mut scratch.far_out);
            for (sample, &j) in scratch.far_out.iter().zip(&scratch.far_js) {
                let sj = segments[j];
                let s = sample.value * width;
                // ∇'G = −∇_Δ G
                let d = -(sample.gradient[0] * sj.normal[0] + sample.gradient[1] * sj.normal[1])
                    * (sj.jacobian * width);
                entries.push((j, s, d));
            }
            Row2d {
                entries,
                stats: AssemblyStats::default(),
            }
        },
    );

    scatter_rows_2d(n, rows)
}

/// Locally corrected 2D assembly: analytic `ln R` extraction plus adaptive
/// quadrature of the smooth remainder on every near (minimum-image) pair,
/// with the far-field midpoint samples gathered into blocked row panels.
fn assemble_medium_2d_corrected(
    mesh: &ContourMesh,
    green: &PeriodicGreen2d,
    policy: NearFieldPolicy,
    eval: KernelEval,
    parallelism: AssemblyParallelism,
) -> MediumBlocks2d {
    let n = mesh.len();
    let segments = mesh.segments();
    let width = mesh.segment_width();
    let length = mesh.period();
    let near_radius_sq = (policy.radius * width) * (policy.radius * width);
    let rule = AdaptiveLineGauss::new(
        policy.order,
        NearFieldPolicy::REMAINDER_TOLERANCE,
        NearFieldPolicy::MAX_DEPTH,
    );

    let rows = map_rows(
        n,
        parallelism.worker_count(),
        Scratch2d::default,
        |i, scratch| {
            let si = segments[i];
            scratch.far_js.clear();
            scratch.far_seps.clear();
            let mut entries: Vec<(usize, c64, c64)> = Vec::with_capacity(n);
            let mut stats = AssemblyStats::default();
            for (j, sj) in segments.iter().enumerate() {
                if i == j {
                    let (s, d) = corrected_entry_2d(
                        green, &si, sj, sj.x, width, &rule, eval, scratch, &mut stats,
                    );
                    // The principal value of the double layer over the straight
                    // tangent segment vanishes; keep only the smooth remainder.
                    entries.push((i, s, d));
                    continue;
                }
                let dx = si.x - sj.x;
                let dz = si.z - sj.z;
                let wrap = (dx / length).round() * length;
                let dxw = dx - wrap;
                if dxw * dxw + dz * dz < near_radius_sq {
                    let (s, d) = corrected_entry_2d(
                        green,
                        &si,
                        sj,
                        sj.x + wrap,
                        width,
                        &rule,
                        eval,
                        scratch,
                        &mut stats,
                    );
                    entries.push((j, s, d));
                    continue;
                }
                scratch.far_js.push(j);
                scratch.far_seps.push(Separation2d::new(dx, dz));
            }

            eval_gathered_2d(green, eval, &scratch.far_seps, &mut scratch.far_out);
            for (sample, &j) in scratch.far_out.iter().zip(&scratch.far_js) {
                let sj = segments[j];
                let s = sample.value * width;
                let d = -(sample.gradient[0] * sj.normal[0] + sample.gradient[1] * sj.normal[1])
                    * (sj.jacobian * width);
                entries.push((j, s, d));
            }
            Row2d { entries, stats }
        },
    );

    scatter_rows_2d(n, rows)
}

/// Serial, row-ordered scatter of computed row panels into the matrices —
/// deterministic and race-free, so parallel assemblies are bit-identical to
/// serial ones.
fn scatter_rows_2d(n: usize, rows: Vec<Row2d>) -> MediumBlocks2d {
    let mut single = CMatrix::zeros(n, n);
    let mut double = CMatrix::zeros(n, n);
    let mut stats = AssemblyStats::default();
    for (i, row) in rows.iter().enumerate() {
        for &(j, s, d) in &row.entries {
            single[(i, j)] = s;
            double[(i, j)] = d;
        }
        stats.merge(&row.stats);
    }
    MediumBlocks2d {
        single_layer: single,
        double_layer: double,
        stats,
    }
}

/// One locally corrected 2D matrix-entry pair `(S_ij, D_ij)`.
///
/// The source segment is its tangent line at the (possibly periodically
/// shifted) centre `(src_x, source.z)`:
///
/// * the `−ln R/(2π)` static part of `S` is the analytic segment log integral
///   divided by the segment Jacobian (projected measure);
/// * the static part of `D` is the signed subtended angle over `2π`;
/// * the remainders are integrated with the shared adaptive line rule, node
///   blocks at a time: under [`KernelEval::Batched`] each block's kernel
///   samples come from one [`PeriodicGreen2d::eval_batch_samples`] call
///   (the 2D kernel *is* the expensive part of this integrand), under
///   [`KernelEval::Scalar`] from per-node [`PeriodicGreen2d::sample`] calls —
///   the oracle path, bit-identical to the historical per-point recursion.
#[allow(clippy::too_many_arguments)]
fn corrected_entry_2d(
    green: &PeriodicGreen2d,
    observation: &Segment2d,
    source: &Segment2d,
    src_x: f64,
    width: f64,
    rule: &AdaptiveLineGauss,
    eval: KernelEval,
    scratch: &mut Scratch2d,
    stats: &mut AssemblyStats,
) -> (c64, c64) {
    let h = 0.5 * width;
    let a = [src_x - h, source.z - source.fx * h];
    let b = [src_x + h, source.z + source.fx * h];
    let p = [observation.x, observation.z];
    let static_single = -ln_r_integral_over_segment(p, a, b) / (2.0 * PI * source.jacobian);
    let static_double = subtended_angle_of_segment(p, a, b) / (2.0 * PI);

    let normal = source.normal;
    let jacobian = source.jacobian;
    let origin_tiny = 1e-12 * width;
    // Split borrows: the quadrature arena and the kernel node buffers are
    // disjoint fields of the worker scratch.
    let Scratch2d {
        quad,
        node_seps,
        node_out,
        ..
    } = scratch;
    let outcome = rule.integrate_pair_batched(
        (src_x - h, src_x + h),
        static_single.abs().max(width / (2.0 * PI)),
        quad,
        |xs, out| {
            node_seps.clear();
            for &x in xs {
                let zs = source.z + source.fx * (x - src_x);
                node_seps.push(Separation2d::new(p[0] - x, p[1] - zs));
            }
            node_out.clear();
            node_out.resize(node_seps.len(), Green2dSample::default());
            match eval {
                KernelEval::Batched => {
                    // A node on top of the source centre would be a lattice
                    // point for the batch evaluator; integrate it as the
                    // regularized origin value below instead.
                    let safe = node_seps
                        .iter()
                        .all(|sep| sep.dx.hypot(sep.dz) >= origin_tiny);
                    if safe {
                        green.eval_batch_samples(node_seps, node_out);
                    } else {
                        for (sep, slot) in node_seps.iter().zip(node_out.iter_mut()) {
                            if sep.dx.hypot(sep.dz) >= origin_tiny {
                                *slot = green.sample(sep.dx, sep.dz);
                            }
                        }
                    }
                }
                KernelEval::Scalar => {
                    for (sep, slot) in node_seps.iter().zip(node_out.iter_mut()) {
                        if sep.dx.hypot(sep.dz) >= origin_tiny {
                            *slot = green.sample(sep.dx, sep.dz);
                        }
                    }
                }
            }
            for ((sep, sample), slot) in node_seps.iter().zip(node_out.iter()).zip(out.iter_mut()) {
                let r = sep.dx.hypot(sep.dz);
                if r < origin_tiny {
                    *slot = (green.regularized_at_origin(), c64::zero());
                    continue;
                }
                // The log cancellation is benign (both terms are O(ln R)), so
                // the remainder can be formed directly from the full kernel.
                let s = sample.value + c64::from_real(r.ln() / (2.0 * PI));
                // Remainder gradient: ∇_Δ(G + ln R/(2π)) = ∇_Δ G + Δ̂/(2πR).
                let gx = sample.gradient[0] + c64::from_real(sep.dx / (2.0 * PI * r * r));
                let gz = sample.gradient[1] + c64::from_real(sep.dz / (2.0 * PI * r * r));
                let d = -(gx * normal[0] + gz * normal[1]) * jacobian;
                *slot = (s, d);
            }
        },
    );
    stats.absorb(&outcome);
    (
        c64::from_real(static_single) + outcome.values.0,
        c64::from_real(static_double) + outcome.values.1,
    )
}

/// Integrates the single- and double-layer kernels over one *near* source
/// segment with a 4-point Gauss rule (tangent-line surface representation).
/// Legacy scheme only.
fn integrate_source_segment(
    green: &PeriodicGreen2d,
    observation: &Segment2d,
    source: &Segment2d,
    width: f64,
) -> (c64, c64) {
    let rule = gauss_legendre_on(4, -0.5 * width, 0.5 * width);
    let mut s = c64::zero();
    let mut d = c64::zero();
    for (q, w) in rule.iter() {
        let xs = source.x + q;
        let zs = source.z + source.fx * q;
        let dx = observation.x - xs;
        let dz = observation.z - zs;
        let sample = green.sample(dx, dz);
        s += sample.value * w;
        d += -(sample.gradient[0] * source.normal[0] + sample.gradient[1] * source.normal[1])
            * (source.jacobian * w);
    }
    (s, d)
}

/// The assembled 2D SWM system.
#[derive(Debug, Clone)]
pub struct SwmSystem2d {
    /// System matrix (2N × 2N).
    pub matrix: CMatrix,
    /// Right-hand side.
    pub rhs: Vec<c64>,
    /// Number of surface unknowns N.
    pub surface_unknowns: usize,
    /// Merged integration diagnostics of both media assemblies.
    pub stats: AssemblyStats,
}

/// Assembles the full coupled 2D system.
pub fn assemble_system_2d(
    mesh: &ContourMesh,
    g1: &PeriodicGreen2d,
    g2: &PeriodicGreen2d,
    beta: c64,
    k1: c64,
    scheme: AssemblyScheme,
) -> SwmSystem2d {
    assemble_system_2d_with(
        mesh,
        g1,
        g2,
        beta,
        k1,
        scheme,
        KernelEval::default(),
        AssemblyParallelism::default(),
    )
}

/// Assembles the full coupled 2D system with explicit kernel evaluation and
/// parallelism strategies (see [`assemble_medium_2d_with`]).
#[allow(clippy::too_many_arguments)]
pub fn assemble_system_2d_with(
    mesh: &ContourMesh,
    g1: &PeriodicGreen2d,
    g2: &PeriodicGreen2d,
    beta: c64,
    k1: c64,
    scheme: AssemblyScheme,
    eval: KernelEval,
    parallelism: AssemblyParallelism,
) -> SwmSystem2d {
    let n = mesh.len();
    let m1 = assemble_medium_2d_with(mesh, g1, scheme, eval, parallelism);
    let m2 = assemble_medium_2d_with(mesh, g2, scheme, eval, parallelism);

    let mut matrix = CMatrix::zeros(2 * n, 2 * n);
    let half = c64::from_real(0.5);
    for i in 0..n {
        for j in 0..n {
            let delta_ij = if i == j { c64::one() } else { c64::zero() };
            matrix[(i, j)] = half * delta_ij - m1.double_layer[(i, j)];
            matrix[(i, n + j)] = beta * m1.single_layer[(i, j)];
            matrix[(n + i, j)] = half * delta_ij + m2.double_layer[(i, j)];
            matrix[(n + i, n + j)] = -m2.single_layer[(i, j)];
        }
    }

    let mut rhs = vec![c64::zero(); 2 * n];
    for (i, seg) in mesh.segments().iter().enumerate() {
        rhs[i] = (c64::new(0.0, -1.0) * k1 * seg.z).exp();
    }

    let mut stats = m1.stats;
    stats.merge(&m2.stats);
    SwmSystem2d {
        matrix,
        rhs,
        surface_unknowns: n,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rough_surface::Profile1d;

    fn both_schemes() -> [AssemblyScheme; 2] {
        [AssemblyScheme::Legacy, AssemblyScheme::default()]
    }

    #[test]
    fn flat_contour_double_layer_vanishes() {
        let mesh = ContourMesh::from_profile(&Profile1d::flat(8, 5e-6));
        let g = PeriodicGreen2d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        for scheme in both_schemes() {
            let blocks = assemble_medium_2d(&mesh, &g, scheme);
            // The exact double layer vanishes on a flat contour; the truncated
            // Kummer series leaves a residue far below anything that could
            // compete with the ½ free term of the integral equation.
            let scale = blocks.single_layer[(0, 0)].abs();
            for i in 0..8 {
                for j in 0..8 {
                    assert!(
                        blocks.double_layer[(i, j)].abs() < 1e-5 * scale,
                        "{scheme:?}: D[{i}][{j}] = {}",
                        blocks.double_layer[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn single_layer_self_term_dominates_neighbours() {
        let profile = Profile1d::new(
            5e-6,
            (0..8)
                .map(|i| 0.3e-6 * (2.0 * std::f64::consts::PI * i as f64 / 8.0).sin())
                .collect(),
        )
        .unwrap();
        let mesh = ContourMesh::from_profile(&profile);
        let g = PeriodicGreen2d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        for scheme in both_schemes() {
            let blocks = assemble_medium_2d(&mesh, &g, scheme);
            for i in 0..8 {
                assert!(
                    blocks.single_layer[(i, i)].abs() > blocks.single_layer[(i, (i + 1) % 8)].abs(),
                    "{scheme:?}: row {i}"
                );
            }
        }
    }

    #[test]
    fn corrected_scheme_treats_the_seam_like_a_direct_neighbour() {
        let mesh = ContourMesh::from_profile(&Profile1d::flat(8, 5e-6));
        let g = PeriodicGreen2d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        let blocks = assemble_medium_2d(&mesh, &g, AssemblyScheme::default());
        // Segment 0's +x neighbour is 1; its seam neighbour is 7.
        let direct = blocks.single_layer[(0, 1)];
        let seam = blocks.single_layer[(0, 7)];
        assert!(
            (direct - seam).abs() < 1e-9 * direct.abs(),
            "direct {direct} vs seam {seam}"
        );
    }

    #[test]
    fn batched_and_scalar_assembly_agree_for_both_schemes() {
        let profile = Profile1d::new(
            5e-6,
            (0..10)
                .map(|i| 0.3e-6 * (2.0 * std::f64::consts::PI * i as f64 / 10.0).sin())
                .collect(),
        )
        .unwrap();
        let mesh = ContourMesh::from_profile(&profile);
        for &k in &[c64::new(1.0e6, 1.0e6), c64::new(2.0e5, 0.0)] {
            let g = PeriodicGreen2d::new(k, 5e-6);
            for scheme in both_schemes() {
                let scalar = assemble_medium_2d_with(
                    &mesh,
                    &g,
                    scheme,
                    KernelEval::Scalar,
                    AssemblyParallelism::Serial,
                );
                let batched = assemble_medium_2d_with(
                    &mesh,
                    &g,
                    scheme,
                    KernelEval::Batched,
                    AssemblyParallelism::Serial,
                );
                let mut scale = 0.0f64;
                for i in 0..mesh.len() {
                    for j in 0..mesh.len() {
                        scale = scale
                            .max(scalar.single_layer[(i, j)].abs())
                            .max(scalar.double_layer[(i, j)].abs());
                    }
                }
                for i in 0..mesh.len() {
                    for j in 0..mesh.len() {
                        let (a, b) = (scalar.single_layer[(i, j)], batched.single_layer[(i, j)]);
                        assert!(
                            (a - b).abs() <= 1e-12 * (scale + a.abs()),
                            "{scheme:?} S[{i}][{j}]: {a} vs {b}"
                        );
                        let (a, b) = (scalar.double_layer[(i, j)], batched.double_layer[(i, j)]);
                        assert!(
                            (a - b).abs() <= 1e-12 * (scale + a.abs()),
                            "{scheme:?} D[{i}][{j}]: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_assembly_is_bit_identical_across_thread_counts() {
        let profile = Profile1d::new(
            5e-6,
            (0..10)
                .map(|i| 0.3e-6 * (2.0 * std::f64::consts::PI * i as f64 / 10.0).sin())
                .collect(),
        )
        .unwrap();
        let mesh = ContourMesh::from_profile(&profile);
        let g = PeriodicGreen2d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        for scheme in both_schemes() {
            for eval in [KernelEval::Batched, KernelEval::Scalar] {
                let serial =
                    assemble_medium_2d_with(&mesh, &g, scheme, eval, AssemblyParallelism::Serial);
                for threads in [1usize, 2, 4, 8] {
                    let parallel = assemble_medium_2d_with(
                        &mesh,
                        &g,
                        scheme,
                        eval,
                        AssemblyParallelism::workers(threads),
                    );
                    for i in 0..mesh.len() {
                        for j in 0..mesh.len() {
                            let (a, b) =
                                (serial.single_layer[(i, j)], parallel.single_layer[(i, j)]);
                            assert_eq!(
                                (a.re.to_bits(), a.im.to_bits()),
                                (b.re.to_bits(), b.im.to_bits()),
                                "{scheme:?}/{eval:?} S[{i}][{j}] at {threads} threads"
                            );
                            let (a, b) =
                                (serial.double_layer[(i, j)], parallel.double_layer[(i, j)]);
                            assert_eq!(
                                (a.re.to_bits(), a.im.to_bits()),
                                (b.re.to_bits(), b.im.to_bits()),
                                "{scheme:?}/{eval:?} D[{i}][{j}] at {threads} threads"
                            );
                        }
                    }
                    assert_eq!(parallel.stats, serial.stats);
                }
            }
        }
    }

    #[test]
    fn corrected_assembly_reports_adaptive_statistics() {
        let mesh = ContourMesh::from_profile(&Profile1d::flat(8, 5e-6));
        let g = PeriodicGreen2d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        let blocks = assemble_medium_2d(&mesh, &g, AssemblyScheme::default());
        assert!(blocks.stats.corrected_entries >= mesh.len());
        assert!(blocks.stats.all_converged(), "{:?}", blocks.stats);
        let legacy = assemble_medium_2d(&mesh, &g, AssemblyScheme::Legacy);
        assert_eq!(legacy.stats, AssemblyStats::default());
    }

    #[test]
    fn system_shape_and_rhs() {
        let mesh = ContourMesh::from_profile(&Profile1d::flat(6, 5e-6));
        let g1 = PeriodicGreen2d::new(c64::new(200.0, 0.0), 5e-6);
        let g2 = PeriodicGreen2d::new(c64::new(1.0e6, 1.0e6), 5e-6);
        let sys = assemble_system_2d(
            &mesh,
            &g1,
            &g2,
            c64::new(0.0, -1e-8),
            c64::new(200.0, 0.0),
            AssemblyScheme::Legacy,
        );
        assert_eq!(sys.matrix.rows(), 12);
        assert_eq!(sys.rhs.len(), 12);
        assert_eq!(sys.surface_unknowns, 6);
        for i in 0..6 {
            assert!((sys.rhs[i] - c64::one()).abs() < 1e-9);
            assert_eq!(sys.rhs[6 + i], c64::zero());
        }
    }
}
