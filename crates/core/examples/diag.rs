use rough_core::{RoughnessSpec, SwmProblem};
use rough_em::material::Stackup;
use rough_em::units::{GigaHertz, Micrometers};
use rough_surface::RoughSurface;

fn main() {
    for ghz in [1.0, 5.0] {
        for n in [8usize, 12, 16, 20] {
            let problem = SwmProblem::builder(
                Stackup::paper_baseline(),
                RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0)),
            )
            .frequency(GigaHertz::new(ghz).into())
            .cells_per_side(n)
            .build()
            .unwrap();
            let l = problem.patch_length();
            let amp = 0.5e-6;
            let surface = RoughSurface::from_fn(n, l, |x, y| {
                amp * ((2.0 * std::f64::consts::PI * x / l).cos()
                    + (2.0 * std::f64::consts::PI * y / l).sin())
            });
            let area_ratio = surface.area_ratio();
            let res = problem.solve(&surface).unwrap();
            let flat_num = problem.flat_reference_power().unwrap();
            let flat_ana = problem.analytic_smooth_power();
            println!(
                "f={ghz} GHz n={n:2}  Pr/Ps={:.4}  area_ratio={:.4}  flat_num/ana={:.4}",
                res.enhancement_factor(),
                area_ratio,
                flat_num / flat_ana
            );
        }
    }
}
