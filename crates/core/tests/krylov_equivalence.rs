//! Preconditioned Krylov vs direct LU on a *real* assembled rough-surface
//! system (reduced Fig. 5 case) — not the synthetic well-conditioned matrix of
//! the `solver.rs` unit tests.
//!
//! Pins the acceptance criteria of the matrix-free operator: Pr/Ps from the
//! preconditioned Krylov + MatrixFree path agrees with DirectLu + Dense within
//! 1e-8 relative, and the block-diagonal preconditioner keeps the iteration
//! counts small (recorded in the test output).

use rough_core::solver::solve_operator;
use rough_core::{
    AssemblyScheme, MatrixFreeOperator, MatrixFreePolicy, OperatorRepr, RoughnessSpec, SolverKind,
    SwmProblem,
};
use rough_em::material::Stackup;
use rough_em::units::{GigaHertz, Micrometers};

/// Reduced Fig. 5 configuration: the paper's baseline stack and Gaussian
/// roughness (RMS 1 µm, correlation length 1 µm) on a coarse validation grid.
fn reduced_fig5(solver: SolverKind, repr: OperatorRepr) -> SwmProblem {
    SwmProblem::builder(
        Stackup::paper_baseline(),
        RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0)),
    )
    .frequency(GigaHertz::new(5.0).into())
    .cells_per_side(8)
    .solver(solver)
    .operator_repr(repr)
    .build()
    .expect("valid configuration")
}

#[test]
fn preconditioned_krylov_matches_direct_lu_on_reduced_fig5() {
    let dense = reduced_fig5(SolverKind::DirectLu, OperatorRepr::Dense);
    let surface = dense.sample_surface(5);
    let reference = dense.solve(&surface).unwrap();
    assert!(reference.enhancement_factor() > 0.9);

    for kind in [
        SolverKind::Bicgstab { tolerance: 1e-12 },
        SolverKind::Gmres {
            tolerance: 1e-12,
            restart: 60,
        },
    ] {
        let krylov = reduced_fig5(kind, OperatorRepr::MatrixFree(MatrixFreePolicy::default()));
        let result = krylov.solve(&surface).unwrap();
        let rel = (result.enhancement_factor() - reference.enhancement_factor()).abs()
            / reference.enhancement_factor();
        assert!(
            rel <= 1e-8,
            "{kind:?}: Pr/Ps {:.12} vs LU {:.12} (rel {rel:e})",
            result.enhancement_factor(),
            reference.enhancement_factor()
        );
        assert!(result.relative_residual() < 1e-10);
    }
}

#[test]
fn block_preconditioner_keeps_iteration_counts_small() {
    let problem = reduced_fig5(
        SolverKind::Bicgstab { tolerance: 1e-12 },
        OperatorRepr::MatrixFree(MatrixFreePolicy::default()),
    );
    let surface = problem.sample_surface(5);
    let operator = problem.operator();
    let AssemblyScheme::LocallyCorrected(policy) = operator.assembly() else {
        panic!("default scheme is locally corrected");
    };
    let mesh = rough_core::mesh::PatchMesh::from_surface(&surface);
    let mf = MatrixFreeOperator::assemble(
        &mesh,
        operator.green_dielectric(),
        operator.green_conductor(),
        operator.beta(),
        operator.k1(),
        policy,
        MatrixFreePolicy::default(),
        operator.kernel_eval(),
        rough_core::AssemblyParallelism::Serial,
    );
    let precond = mf.preconditioner();

    for kind in [
        SolverKind::Bicgstab { tolerance: 1e-12 },
        SolverKind::Gmres {
            tolerance: 1e-12,
            restart: 60,
        },
    ] {
        let (_, stats) = solve_operator(&mf, mf.rhs(), kind, Some(&precond)).unwrap();
        println!(
            "reduced Fig.5 {kind:?}: {} iterations, residual {:.2e}",
            stats.iterations, stats.relative_residual
        );
        assert!(stats.iterations > 0);
        // The 2N=128 system converges in a handful of preconditioned
        // iterations; 100 is the regression alarm, not the expectation.
        assert!(
            stats.iterations < 100,
            "{kind:?} needed {} iterations",
            stats.iterations
        );
        assert!(stats.relative_residual < 1e-10);
    }
}
