//! Graceful solver degradation on the reduced Fig. 5 matrix-free scenario.
//!
//! Pins the resilience acceptance criterion: with the fault plan injecting a
//! Krylov breakdown, a matrix-free solve completes through the escalation
//! ladder instead of erroring, the final dense fallback is bit-identical to a
//! clean dense `DirectLu` solve, and the whole chain is recorded in
//! [`rough_core::SolveDiagnostics`].
//!
//! Every test here installs an in-process fault plan via
//! [`rough_faults::ScopedPlan`], which serializes them against each other —
//! keep any test that performs Krylov solves in this file plan-guarded, since
//! an armed `solver.krylov.breakdown:*` is process-global.

use rough_core::{MatrixFreePolicy, OperatorRepr, RoughnessSpec, SolverKind, SwmProblem};
use rough_em::material::Stackup;
use rough_em::units::{GigaHertz, Micrometers};
use rough_faults::ScopedPlan;

/// Reduced Fig. 5 configuration (same as `krylov_equivalence.rs`).
fn reduced_fig5(solver: SolverKind, repr: OperatorRepr) -> SwmProblem {
    SwmProblem::builder(
        Stackup::paper_baseline(),
        RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0)),
    )
    .frequency(GigaHertz::new(5.0).into())
    .cells_per_side(8)
    .solver(solver)
    .operator_repr(repr)
    .build()
    .expect("valid configuration")
}

fn gmres_mf() -> SwmProblem {
    reduced_fig5(
        SolverKind::Gmres {
            tolerance: 1e-12,
            restart: 60,
        },
        OperatorRepr::MatrixFree(MatrixFreePolicy::default()),
    )
}

#[test]
fn persistent_breakdown_falls_back_to_dense_bit_identically() {
    let dense = reduced_fig5(SolverKind::DirectLu, OperatorRepr::Dense);
    let surface = dense.sample_surface(5);
    let reference = dense.solve(&surface).unwrap();

    let _plan = ScopedPlan::parse("solver.krylov.breakdown:*");
    let krylov = gmres_mf();
    let operator = krylov.operator();
    // The flat reference itself degrades through the same ladder.
    let flat_reference = krylov.flat_reference_power().unwrap();
    let (loss, diagnostics) = krylov
        .solve_with_reference_diagnosed(&surface, flat_reference, &operator)
        .unwrap();

    assert!(loss.degraded(), "fallback result must be marked degraded");
    assert!(diagnostics.degraded);
    assert_eq!(diagnostics.attempts.len(), 3, "{}", diagnostics.summary());
    assert!(!diagnostics.attempts[0].succeeded());
    assert!(diagnostics.attempts[0].outcome.contains("injected"));
    assert!(diagnostics.attempts[1].strategy.contains("gmres-tightened"));
    assert!(!diagnostics.attempts[1].succeeded());
    assert_eq!(diagnostics.attempts[2].strategy, "direct-lu-fallback");
    assert!(diagnostics.attempts[2].succeeded());

    // Pr and Ps recovered through the dense fallback are bit-identical to
    // the clean dense solve — the degradation ladder ends on *exactly* the
    // Dense-representation code path.
    assert_eq!(
        loss.absorbed_power().to_bits(),
        reference.absorbed_power().to_bits()
    );
    assert_eq!(
        loss.flat_absorbed_power().to_bits(),
        reference.flat_absorbed_power().to_bits()
    );
    assert_eq!(
        loss.enhancement_factor().to_bits(),
        reference.enhancement_factor().to_bits()
    );
}

#[test]
fn single_breakdown_recovers_on_the_tightened_rung() {
    let krylov = gmres_mf();
    let surface = krylov.sample_surface(5);
    let operator = krylov.operator();

    let _plan = ScopedPlan::parse("solver.krylov.breakdown:1");
    let (_, stats, diagnostics) = krylov
        .absorbed_power_diagnosed(&surface, &operator)
        .unwrap();
    assert!(diagnostics.degraded);
    assert_eq!(diagnostics.attempts.len(), 2, "{}", diagnostics.summary());
    assert!(!diagnostics.attempts[0].succeeded());
    assert!(diagnostics.attempts[1].strategy.contains("gmres-tightened"));
    assert!(diagnostics.attempts[1].succeeded());
    assert!(stats.relative_residual < 1e-10);
}

#[test]
fn clean_solves_report_a_single_non_degraded_attempt() {
    let _plan = ScopedPlan::install(rough_faults::FaultPlan::none());
    let krylov = gmres_mf();
    let surface = krylov.sample_surface(5);
    let operator = krylov.operator();
    let (_, _, diagnostics) = krylov
        .absorbed_power_diagnosed(&surface, &operator)
        .unwrap();
    assert!(!diagnostics.degraded);
    assert_eq!(diagnostics.attempts.len(), 1);
    assert!(diagnostics.attempts[0].succeeded());
}
