//! Cross-crate integration tests of the stochastic pipeline: KL expansion →
//! sparse-grid collocation → statistics, wrapped around the SWM solver.

use roughsim::prelude::*;
use roughsim::stochastic::collocation::run_sscm;
use roughsim::stochastic::monte_carlo::run_monte_carlo;
use roughsim::stochastic::sparse_grid::SparseGrid;
use roughsim::surface::correlation::CorrelationFunction;
use roughsim::surface::generation::kl::KarhunenLoeve;

#[test]
fn sscm_and_monte_carlo_agree_on_the_swm_quantity_of_interest() {
    let stack = Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide());
    let cf = CorrelationFunction::gaussian(1.0e-6, 1.0e-6);
    let cells = 8;
    let problem = SwmProblem::builder(
        stack,
        RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0)),
    )
    .frequency(GigaHertz::new(5.0).into())
    .cells_per_side(cells)
    .build()
    .unwrap();

    let kl = KarhunenLoeve::new(cf, cells, problem.patch_length(), 0.9).unwrap();
    let kl = kl.with_modes(4);
    let reference = problem.flat_reference_power().unwrap();
    let model = |xi: &[f64]| {
        problem
            .solve_with_reference(&kl.synthesize(xi), reference)
            .unwrap()
            .enhancement_factor()
    };

    let sscm = run_sscm(
        kl.modes(),
        &SscmConfig {
            order: 2,
            surrogate_samples: 5000,
            seed: 3,
        },
        model,
    );
    let mc = run_monte_carlo(
        kl.modes(),
        &MonteCarloConfig {
            samples: 30,
            seed: 4,
        },
        model,
    );

    // Both estimate the same mean enhancement; the MC error bar at 30 samples
    // is generous, so a loose band is appropriate.
    assert!(
        sscm.mean() > 1.0 && sscm.mean() < 2.5,
        "sscm mean {}",
        sscm.mean()
    );
    assert!(
        (sscm.mean() - mc.mean()).abs() < 4.0 * mc.summary().std_error() + 0.05,
        "SSCM {} vs MC {} ± {}",
        sscm.mean(),
        mc.mean(),
        mc.summary().std_error()
    );
    // And SSCM used far fewer solves than a converged MC would.
    assert!(sscm.evaluations() < 60);
}

#[test]
fn table1_structure_sparse_grids_beat_monte_carlo_sampling_counts() {
    // The structural claim of Table I, independent of the solver: at the
    // paper's stochastic dimensions (M = 16 for the Gaussian CF, M = 19 for
    // the extracted CF — the truncation Table I reports) the sparse grids
    // need an order of magnitude fewer nodes than the 5000-sample Monte-Carlo
    // reference. The energy-based truncation itself is monotone and captures
    // the requested fraction; the paper caps the dimension on top of it, as
    // every driver in this workspace does via `max_kl_modes`.
    for (cf, paper_modes) in [
        (CorrelationFunction::gaussian(1.0e-6, 1.0e-6), 16),
        (CorrelationFunction::paper_extracted(), 19),
    ] {
        let kl = KarhunenLoeve::new(cf, 10, 5.0 * cf.correlation_length(), 0.95).unwrap();
        assert!(kl.captured_energy() >= 0.95);
        let modes = kl.modes().min(paper_modes);
        let first = SparseGrid::new(modes, 1).len();
        let second = SparseGrid::new(modes, 2).len();
        assert!(first < second);
        assert!(second * 5 < 5000, "{cf}: second-order grid {second}");
    }
}

#[test]
fn kl_truncation_error_shows_up_as_reduced_variance_not_bias() {
    // Sanity check of the dimension-reduction step itself.
    let cf = CorrelationFunction::gaussian(1.0e-6, 1.0e-6);
    let full = KarhunenLoeve::new(cf, 8, 5.0e-6, 0.999).unwrap();
    let truncated = KarhunenLoeve::new(cf, 8, 5.0e-6, 0.9).unwrap();
    assert!(truncated.modes() < full.modes());
    assert!(truncated.captured_energy() < full.captured_energy());
    // Means of synthesized surfaces stay at zero either way.
    let xi_full: Vec<f64> = (0..full.modes())
        .map(|i| ((i * 7) % 3) as f64 - 1.0)
        .collect();
    let xi_trunc: Vec<f64> = (0..truncated.modes())
        .map(|i| ((i * 7) % 3) as f64 - 1.0)
        .collect();
    assert!(full.synthesize(&xi_full).mean().abs() < 1e-7);
    assert!(truncated.synthesize(&xi_trunc).mean().abs() < 1e-7);
}
