//! Golden-file regression tests for the engine's campaign reports.
//!
//! Small, deterministic scenarios — a reduced Fig. 5 deterministic-protrusion
//! sweep and a reduced Fig. 6-style Monte-Carlo ensemble — are run through the
//! engine under *both* assembly schemes and their per-case CSV rows are
//! diffed against snapshots under `tests/golden/`. The engine's plan-time
//! seeding makes the runs bit-reproducible, so any drift in the numbers is a
//! real behaviour change: either intentional (regenerate the snapshots by
//! running with `REGEN_GOLDEN=1`) or a regression this suite exists to catch.
//!
//! Numeric fields are compared with a relative tolerance (1e-6) so that
//! last-ulp libm differences across platforms do not flake the suite.

use roughsim::engine::CampaignReport;
use roughsim::prelude::*;
use roughsim::surface::RoughSurface;
use std::path::PathBuf;

fn paper_stack() -> Stackup {
    Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide())
}

/// Reduced Fig. 5: the deterministic half-spheroid protrusion swept over
/// three frequencies on a coarse 8-cell grid.
fn fig5_reduced(assembly: AssemblyScheme) -> Scenario {
    let tile = 12.0e-6;
    let (height, base_radius) = (5.8e-6, 4.7e-6);
    let cells = 8;
    let surface = RoughSurface::from_fn(cells, tile, |x, y| {
        let dx = x - 0.5 * tile;
        let dy = y - 0.5 * tile;
        let r2 = (dx * dx + dy * dy) / (base_radius * base_radius);
        if r2 < 1.0 {
            height * (1.0 - r2).sqrt()
        } else {
            0.0
        }
    });
    Scenario::builder(paper_stack())
        .name("fig5-golden-reduced")
        .roughness(RoughnessSpec::deterministic(Micrometers::new(12.0)))
        .frequencies([
            GigaHertz::new(2.0).into(),
            GigaHertz::new(6.0).into(),
            GigaHertz::new(10.0).into(),
        ])
        .cells_per_side(cells)
        .assembly(assembly)
        .deterministic(surface)
        .build()
        .expect("valid reduced Fig. 5 scenario")
}

/// Reduced Fig. 6-style ensemble: a tiny Monte-Carlo campaign over two
/// frequencies with plan-time-seeded realizations.
fn fig6_reduced(assembly: AssemblyScheme) -> Scenario {
    Scenario::builder(paper_stack())
        .name("fig6-golden-reduced")
        .roughness(RoughnessSpec::gaussian(
            Micrometers::new(1.0),
            Micrometers::new(1.0),
        ))
        .frequencies([GigaHertz::new(2.0).into(), GigaHertz::new(8.0).into()])
        .cells_per_side(6)
        .max_kl_modes(3)
        .assembly(assembly)
        .monte_carlo(3)
        .master_seed(0x2009)
        .build()
        .expect("valid reduced Fig. 6 scenario")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Runs the scenario and diffs its CSV rows against the named snapshot.
fn check_against_golden(scenario: &Scenario, name: &str) {
    let engine = Engine::builder().threads(2).build();
    let report = engine.run(scenario).expect("campaign");
    compare_with_golden(report, name);
}

/// Runs the scenario with 4 intra-solve assembly threads per unit — the
/// configuration `ROUGHSIM_ASSEMBLY_THREADS=4` selects (the env override is
/// parsed into exactly this `AssemblyParallelism::Threads(4)` value; see
/// `rough_core::parallel`) — and diffs against the *same* snapshot the serial
/// run is pinned to: campaign outputs must be unchanged by parallelism.
fn check_against_golden_with_parallel_assembly(scenario: &Scenario, name: &str) {
    let config = RunConfig::new().executor(ThreadPoolExecutor::with_assembly(
        2,
        AssemblyParallelism::Threads(4),
    ));
    let report = Run::new(scenario, config)
        .expect("plan")
        .execute()
        .expect("campaign");
    compare_with_golden(report, name);
}

fn compare_with_golden(report: CampaignReport, name: &str) {
    let mut actual = vec![CampaignReport::csv_header().to_string()];
    actual.extend(report.csv_rows());

    let path = golden_path(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual.join("\n") + "\n").expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} (run with REGEN_GOLDEN=1)",
            path.display()
        )
    });
    let expected_lines: Vec<&str> = expected.lines().collect();
    assert_eq!(
        expected_lines.len(),
        actual.len(),
        "{name}: row count changed (golden {} vs actual {})",
        expected_lines.len(),
        actual.len()
    );
    for (row, (want, got)) in expected_lines.iter().zip(&actual).enumerate() {
        assert_fields_match(name, row, want, got);
    }
}

/// Field-wise comparison: numbers within 1e-6 relative (1e-9 absolute),
/// everything else exact.
fn assert_fields_match(name: &str, row: usize, want: &str, got: &str) {
    let want_fields: Vec<&str> = want.split(',').collect();
    let got_fields: Vec<&str> = got.split(',').collect();
    assert_eq!(
        want_fields.len(),
        got_fields.len(),
        "{name} row {row}: field count changed\n  golden: {want}\n  actual: {got}"
    );
    for (column, (w, g)) in want_fields.iter().zip(&got_fields).enumerate() {
        match (w.parse::<f64>(), g.parse::<f64>()) {
            (Ok(wv), Ok(gv)) => {
                let tolerance = 1e-9f64.max(1e-6 * wv.abs());
                assert!(
                    (wv - gv).abs() <= tolerance,
                    "{name} row {row} column {column}: {wv} vs {gv}\n  golden: {want}\n  actual: {got}"
                );
            }
            _ => assert_eq!(
                w, g,
                "{name} row {row} column {column}\n  golden: {want}\n  actual: {got}"
            ),
        }
    }
}

#[test]
fn fig5_reduced_matches_golden_corrected() {
    check_against_golden(
        &fig5_reduced(AssemblyScheme::default()),
        "fig5_reduced_corrected.csv",
    );
}

#[test]
fn fig5_reduced_matches_golden_legacy() {
    check_against_golden(
        &fig5_reduced(AssemblyScheme::Legacy),
        "fig5_reduced_legacy.csv",
    );
}

#[test]
fn fig6_reduced_matches_golden_corrected() {
    check_against_golden(
        &fig6_reduced(AssemblyScheme::default()),
        "fig6_reduced_corrected.csv",
    );
}

#[test]
fn fig6_reduced_matches_golden_legacy() {
    check_against_golden(
        &fig6_reduced(AssemblyScheme::Legacy),
        "fig6_reduced_legacy.csv",
    );
}

#[test]
fn fig5_reduced_matches_golden_with_parallel_assembly() {
    // 4 assembly threads per solve (the ROUGHSIM_ASSEMBLY_THREADS=4
    // configuration) against the serial-run snapshot: campaign outputs are
    // unchanged by intra-solve parallelism.
    check_against_golden_with_parallel_assembly(
        &fig5_reduced(AssemblyScheme::default()),
        "fig5_reduced_corrected.csv",
    );
}

#[test]
fn fig6_reduced_matches_golden_with_parallel_assembly() {
    check_against_golden_with_parallel_assembly(
        &fig6_reduced(AssemblyScheme::default()),
        "fig6_reduced_corrected.csv",
    );
}
