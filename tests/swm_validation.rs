//! Cross-crate integration tests: the SWM solver against its analytic anchors
//! and against the closed-form baselines in their regions of validity.

use roughsim::baselines::spm2::Spm2Model;
use roughsim::baselines::RoughnessLossModel;
use roughsim::em::fresnel::flat_interface;
use roughsim::prelude::*;
use roughsim::surface::correlation::CorrelationFunction;
use roughsim::surface::RoughSurface;

fn paper_stack() -> Stackup {
    Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide())
}

#[test]
fn flat_patch_matches_the_fresnel_anchor_across_frequencies() {
    for ghz in [1.0, 4.0, 9.0] {
        let problem = SwmProblem::builder(
            paper_stack(),
            RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0)),
        )
        .frequency(GigaHertz::new(ghz).into())
        .cells_per_side(8)
        .build()
        .unwrap();
        let numeric = problem.flat_reference_power().unwrap();
        let analytic = problem.analytic_smooth_power();
        let rel = (numeric - analytic).abs() / analytic;
        assert!(rel < 0.08, "f = {ghz} GHz: relative error {rel:.3}");

        // And the underlying transmission coefficient is the good-conductor
        // field doubling.
        let fresnel = flat_interface(&paper_stack(), GigaHertz::new(ghz).into());
        assert!((fresnel.transmission.abs() - 2.0).abs() < 0.05);
    }
}

#[test]
fn swm_tracks_spm2_for_gentle_roughness() {
    // Fig. 3's smooth case (σ = 1 µm, η = 3 µm): SWM and SPM2 agree within a
    // band that our coarse integration-test grid can resolve. At the
    // CI-affordable 12×12 grid (Δ ≈ η/2.4, skin depth ≈ 1.3 Δ at 5 GHz) the
    // SWM estimate converges from below with a known resolution bias
    // (12×12 → 0.974, 16×16 → 1.033, SPM2 → 1.167); the paper's η/8 sampling
    // closes the gap but costs minutes per solve. The test pins the coarse
    // estimate inside a 20 % band of SPM2 and guards the bias against
    // regressing.
    let cf = CorrelationFunction::gaussian(1.0e-6, 3.0e-6);
    let spm2 = Spm2Model::new(cf, Conductor::copper_foil());
    let frequency = GigaHertz::new(5.0);

    let problem = SwmProblem::builder(
        paper_stack(),
        RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(3.0)),
    )
    .frequency(frequency.into())
    .cells_per_side(12)
    .build()
    .unwrap();
    let reference = problem.flat_reference_power().unwrap();
    // Small seeded ensemble of realizations.
    let mut mean = 0.0;
    let samples = 4;
    for seed in 0..samples {
        let surface = problem.sample_surface(100 + seed);
        mean += problem
            .solve_with_reference(&surface, reference)
            .unwrap()
            .enhancement_factor();
    }
    mean /= samples as f64;
    let analytic = spm2.enhancement_factor(frequency.into());
    assert!(
        (mean - analytic).abs() < 0.20 * analytic,
        "SWM ensemble mean {mean:.3} vs SPM2 {analytic:.3}"
    );
    assert!(mean > 0.95, "coarse-grid bias regressed: mean {mean:.3}");
}

#[test]
fn deterministic_protrusion_increases_loss_with_size() {
    // A miniature of the Fig. 5 workflow: a deterministic bump adds loss, and
    // a bigger bump adds more. The test runs at 2 GHz, where the 12×12 grid
    // resolves the skin depth (δ ≈ 1.5 µm > Δ ≈ 0.83 µm); at higher
    // frequencies the coarse grid's negative bias grows faster than the
    // physical enhancement (δ < Δ by 16 GHz), so the frequency trend of
    // Fig. 5 is only recovered at the η/8-class resolutions of the `--full`
    // experiment preset — tracked as a solver-accuracy item in ROADMAP.md.
    let tile = 10.0e-6;
    let cells = 12;
    let bump = |height: f64| {
        RoughSurface::from_fn(cells, tile, |x, y| {
            let dx = (x - 0.5 * tile) / (2.5e-6);
            let dy = (y - 0.5 * tile) / (2.5e-6);
            let r2: f64 = dx * dx + dy * dy;
            if r2 < 1.0 {
                height * (1.0 - r2).sqrt()
            } else {
                0.0
            }
        })
    };
    let problem = SwmProblem::builder(
        paper_stack(),
        RoughnessSpec::deterministic(Meters::new(tile)),
    )
    .frequency(GigaHertz::new(2.0).into())
    .cells_per_side(cells)
    .build()
    .unwrap();
    let reference = problem.flat_reference_power().unwrap();
    let small = problem
        .solve_with_reference(&bump(1.0e-6), reference)
        .unwrap()
        .enhancement_factor();
    let large = problem
        .solve_with_reference(&bump(2.0e-6), reference)
        .unwrap()
        .enhancement_factor();
    assert!(large > 1.0, "2 um bump must add loss: {large:.4}");
    assert!(
        large > small,
        "loss must grow with protrusion size: {small:.4} vs {large:.4}"
    );
    assert!(large < 2.0, "implausibly large enhancement {large:.4}");
}

#[test]
fn three_dimensional_roughness_loses_more_than_ridged_roughness() {
    // Fig. 6's key qualitative claim, checked on matched surfaces.
    use roughsim::core::swm2d::Swm2dProblem;
    let frequency = GigaHertz::new(6.0);
    let problem = SwmProblem::builder(
        paper_stack(),
        RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0)),
    )
    .frequency(frequency.into())
    .cells_per_side(8)
    .build()
    .unwrap();
    let reference = problem.flat_reference_power().unwrap();
    let problem_2d = Swm2dProblem::new(paper_stack(), frequency.into()).unwrap();

    let mut mean_3d = 0.0;
    let mut mean_2d = 0.0;
    let samples = 3;
    for seed in 0..samples {
        let surface = problem.sample_surface(seed + 1);
        mean_3d += problem
            .solve_with_reference(&surface, reference)
            .unwrap()
            .enhancement_factor();
        let ridged = problem.sample_ridged_surface(seed + 1);
        mean_2d += problem_2d
            .solve(&ridged.profile_along_x(0))
            .unwrap()
            .enhancement_factor();
    }
    mean_3d /= samples as f64;
    mean_2d /= samples as f64;
    assert!(
        mean_3d > mean_2d,
        "3D mean {mean_3d:.3} should exceed 2D mean {mean_2d:.3}"
    );
}
