//! Tiered convergence-test harness for the SWM near-field assembly.
//!
//! The solver's headline accuracy problem (ROADMAP "SWM high-frequency
//! accuracy") was a *negative discretization bias*: with the legacy near-field
//! rules, a deterministic protrusion's Pr/Ps decreases with frequency on
//! 10–16-cell grids once the skin depth drops below the cell size — the
//! opposite of the physical (and paper Fig. 5) trend. This harness measures
//! the observed order of accuracy via Richardson extrapolation on the
//! deterministic-protrusion benchmark and proves the locally corrected
//! assembly converges from a strictly smaller bias.
//!
//! Tiers:
//!
//! * **tier 1** (default `cargo test`): the Richardson machinery itself plus a
//!   cheap smoke test on a 6-cell grid.
//! * **slow tier** (`cargo test --release -- --ignored`, the nightly CI job):
//!   the grid-refinement studies at 8/12/16/24 cells and the Fig. 5 trend
//!   check at 16 cells, minutes of dense solves each.

use roughsim::prelude::*;
use roughsim::surface::RoughSurface;

/// The deterministic-protrusion benchmark: a smooth conducting cosine bump
/// (height 3 µm, base radius 5 µm, maximum slope ≈ 0.94) on a 12 µm periodic
/// tile — the Fig. 5 protrusion class, but C¹-smooth so the tangent-plane
/// cell representation is not the accuracy bottleneck and grid-refinement
/// studies measure the *quadrature* order. At 16 GHz the copper skin depth
/// (0.52 µm) is below the 16-cell size (0.75 µm), the regime where the legacy
/// assembly's negative bias inverted the physical trend.
fn protrusion_surface(cells: usize) -> RoughSurface {
    let tile = 12.0e-6;
    let (height, base_radius) = (3.0e-6, 5.0e-6);
    RoughSurface::from_fn(cells, tile, |x, y| {
        let dx = x - 0.5 * tile;
        let dy = y - 0.5 * tile;
        let r = (dx * dx + dy * dy).sqrt();
        if r < base_radius {
            let c = (std::f64::consts::PI * r / (2.0 * base_radius)).cos();
            height * c * c
        } else {
            0.0
        }
    })
}

/// Solves the protrusion benchmark and returns the enhancement factor Pr/Ps.
fn protrusion_enhancement(scheme: AssemblyScheme, cells: usize, ghz: f64) -> f64 {
    let problem = SwmProblem::builder(
        Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide()),
        RoughnessSpec::deterministic(Micrometers::new(12.0)),
    )
    .frequency(GigaHertz::new(ghz).into())
    .cells_per_side(cells)
    .assembly(scheme)
    .build()
    .expect("valid protrusion problem");
    problem
        .solve(&protrusion_surface(cells))
        .expect("protrusion solve")
        .enhancement_factor()
}

/// Observed order of accuracy from three values on grids `h1 > h2 > h3`
/// (arbitrary, not necessarily geometric, refinement ratios), assuming the
/// model `E(h) = E* + C·h^p`: solves
/// `(E1 − E3)/(E2 − E3) = (h1^p − h3^p)/(h2^p − h3^p)` for `p` by bisection.
///
/// Returns `None` when the sequence is not monotone (no meaningful order).
fn observed_order(grid: [f64; 3], values: [f64; 3]) -> Option<f64> {
    let [h1, h2, h3] = grid;
    let [e1, e2, e3] = values;
    assert!(h1 > h2 && h2 > h3 && h3 > 0.0, "grids must refine");
    let d12 = e1 - e3;
    let d23 = e2 - e3;
    if d23 == 0.0 || (d12 / d23) <= 1.0 {
        return None;
    }
    let target = d12 / d23;
    let ratio = |p: f64| (h1.powf(p) - h3.powf(p)) / (h2.powf(p) - h3.powf(p));
    let (mut lo, mut hi) = (0.05, 12.0);
    // ratio(p) is increasing in p for h1 > h2 > h3; bracket then bisect.
    if target <= ratio(lo) || target >= ratio(hi) {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ratio(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Richardson-extrapolated limit `E*` from three values on refining grids,
/// using the observed order. Falls back to the finest value when no order can
/// be fitted.
fn richardson_limit(grid: [f64; 3], values: [f64; 3]) -> f64 {
    match observed_order(grid, values) {
        Some(p) => {
            let [_, h2, h3] = grid;
            let [_, e2, e3] = values;
            // E* = E3 − (E2 − E3)·h3^p/(h2^p − h3^p)
            e3 - (e2 - e3) * h3.powf(p) / (h2.powf(p) - h3.powf(p))
        }
        None => values[2],
    }
}

#[test]
fn richardson_machinery_recovers_synthetic_orders() {
    for p in [1.0, 2.0, 3.5] {
        let grid: [f64; 3] = [1.0 / 8.0, 1.0 / 12.0, 1.0 / 16.0];
        let exact = 1.37;
        let values = grid.map(|h| exact + 0.8 * h.powf(p));
        let fitted = observed_order(grid, values).expect("clean synthetic data");
        assert!((fitted - p).abs() < 1e-6, "p = {p}: fitted {fitted}");
        let limit = richardson_limit(grid, values);
        assert!((limit - exact).abs() < 1e-9, "p = {p}: limit {limit}");
    }
}

#[test]
fn richardson_machinery_rejects_non_monotone_sequences() {
    let grid = [1.0 / 8.0, 1.0 / 12.0, 1.0 / 16.0];
    assert!(observed_order(grid, [1.0, 1.2, 1.1]).is_none());
    // The fallback limit is the finest value.
    let limit = richardson_limit(grid, [1.0, 1.2, 1.1]);
    assert!((limit - 1.1).abs() < 1e-15);
}

#[test]
fn smoke_both_schemes_solve_the_protrusion_on_a_coarse_grid() {
    // Cheap tier-1 guard that the slow-tier benchmark stays runnable: both
    // schemes produce a physical enhancement on a 6-cell grid and do not
    // agree bit-for-bit (they integrate near fields differently).
    let legacy = protrusion_enhancement(AssemblyScheme::Legacy, 6, 4.0);
    let corrected = protrusion_enhancement(AssemblyScheme::default(), 6, 4.0);
    assert!(legacy > 0.5 && legacy < 3.0, "legacy = {legacy}");
    assert!(
        corrected > 0.5 && corrected < 3.0,
        "corrected = {corrected}"
    );
    assert_ne!(legacy.to_bits(), corrected.to_bits());
}

/// Slow tier: the corrected assembly must converge from a strictly smaller
/// bias than the legacy path at 8, 12 and 16 cells.
///
/// The reference limit is Richardson-extrapolated from the corrected path on
/// the three finest grids (12/16/24); the corrected path's own finest values
/// enter the limit, which is exactly what Richardson extrapolation is for.
#[test]
#[ignore = "slow tier: minutes of dense MOM solves; run with --release -- --ignored"]
fn corrected_bias_is_strictly_smaller_at_8_12_16_cells() {
    let ghz = 8.0;
    let grids = [8usize, 12, 16];
    let corrected: Vec<f64> = [8usize, 12, 16, 24]
        .iter()
        .map(|&c| protrusion_enhancement(AssemblyScheme::default(), c, ghz))
        .collect();
    let legacy: Vec<f64> = grids
        .iter()
        .map(|&c| protrusion_enhancement(AssemblyScheme::Legacy, c, ghz))
        .collect();

    let fit_grid = [1.0 / 12.0, 1.0 / 16.0, 1.0 / 24.0];
    let fit_values = [corrected[1], corrected[2], corrected[3]];
    let limit = richardson_limit(fit_grid, fit_values);
    let order = observed_order(fit_grid, fit_values);
    println!("corrected Pr/Ps at 8/12/16/24 cells: {corrected:?}");
    println!("legacy    Pr/Ps at 8/12/16 cells:    {legacy:?}");
    println!("extrapolated limit {limit:.4}, observed order {order:?}");

    for (index, &cells) in grids.iter().enumerate() {
        let corrected_bias = (corrected[index] - limit).abs();
        let legacy_bias = (legacy[index] - limit).abs();
        assert!(
            corrected_bias < legacy_bias,
            "cells = {cells}: |corrected bias| {corrected_bias:.4} must beat \
             |legacy bias| {legacy_bias:.4} (limit {limit:.4})"
        );
    }
}

/// Slow tier: at 16 cells the corrected path must reproduce the paper's
/// rising Pr/Ps-vs-frequency trend (Fig. 5) that the legacy path inverts.
#[test]
#[ignore = "slow tier: minutes of dense MOM solves; run with --release -- --ignored"]
fn corrected_path_restores_the_rising_fig5_trend_at_16_cells() {
    let cells = 16;
    let series: Vec<f64> = [2.0, 8.0, 16.0]
        .iter()
        .map(|&ghz| protrusion_enhancement(AssemblyScheme::default(), cells, ghz))
        .collect();
    println!("corrected Pr/Ps at 2/8/16 GHz, {cells} cells: {series:?}");
    assert!(
        series[0] < series[1] && series[1] < series[2],
        "Pr/Ps must rise with frequency: {series:?}"
    );
    assert!(
        series.iter().all(|&e| e > 1.0),
        "a protrusion always increases the loss: {series:?}"
    );
}
