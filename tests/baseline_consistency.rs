//! Cross-crate integration tests of the analytic baselines against each other
//! and against the material substrate — the consistency relations the paper
//! relies on when it uses each model as a benchmark "in its valid region".

use roughsim::baselines::hammerstad::HammerstadModel;
use roughsim::baselines::hbm::HemisphericalBossModel;
use roughsim::baselines::huray::HurayModel;
use roughsim::baselines::spm2::Spm2Model;
use roughsim::baselines::RoughnessLossModel;
use roughsim::prelude::*;
use roughsim::surface::correlation::CorrelationFunction;
use roughsim::surface::spectrum::SurfaceSpectrum;

#[test]
fn all_models_approach_unity_at_low_frequency() {
    let f = Hertz::new(1.0e6);
    let models: Vec<Box<dyn RoughnessLossModel>> = vec![
        Box::new(HammerstadModel::new(
            Micrometers::new(1.0).into(),
            Conductor::copper_foil(),
        )),
        Box::new(Spm2Model::new(
            CorrelationFunction::gaussian(1.0e-6, 1.0e-6),
            Conductor::copper_foil(),
        )),
        Box::new(HurayModel::cannonball(
            Micrometers::new(0.5).into(),
            Micrometers::new(9.4).into(),
            Conductor::copper_foil(),
        )),
    ];
    for model in models {
        let k = model.enhancement_factor(f.into());
        assert!(
            (k - 1.0).abs() < 0.02,
            "{} gives {k} at 1 MHz",
            model.name()
        );
    }
}

#[test]
fn hammerstad_cannot_distinguish_correlation_lengths_but_spm2_can() {
    let f = GigaHertz::new(5.0);
    let hammerstad = HammerstadModel::new(Micrometers::new(1.0).into(), Conductor::copper_foil());
    let narrow = Spm2Model::new(
        CorrelationFunction::gaussian(1.0e-6, 1.0e-6),
        Conductor::copper_foil(),
    );
    let wide = Spm2Model::new(
        CorrelationFunction::gaussian(1.0e-6, 3.0e-6),
        Conductor::copper_foil(),
    );
    // One number from Hammerstad...
    let h = hammerstad.enhancement_factor(f.into());
    // ...two clearly different numbers from the spectral model.
    let a = narrow.enhancement_factor(f.into());
    let b = wide.enhancement_factor(f.into());
    assert!(a > b + 0.1, "SPM2 should separate η = 1 µm from η = 3 µm");
    assert!(h > 1.0 && h < 2.0);
}

#[test]
fn spm2_diverges_where_hbm_stays_physical_for_large_roughness() {
    // Fig. 5's message: for the tall half-spheroid at high frequency the
    // perturbation model explodes while the boss model saturates.
    let f = GigaHertz::new(20.0);
    let hbm = HemisphericalBossModel::half_spheroid(
        Micrometers::new(5.8).into(),
        Micrometers::new(4.7).into(),
        Micrometers::new(18.8).into(),
        Conductor::copper_foil(),
    );
    let spm2 = Spm2Model::new(
        CorrelationFunction::gaussian(2.45e-6, 2.45e-6),
        Conductor::copper_foil(),
    );
    let k_hbm = hbm.enhancement_factor(f.into());
    let k_spm2 = spm2.enhancement_factor(f.into());
    assert!(k_hbm > 1.2 && k_hbm < 4.0, "HBM {k_hbm}");
    assert!(k_spm2 > k_hbm, "SPM2 {k_spm2} should overshoot HBM {k_hbm}");
}

#[test]
fn spectrum_moments_are_consistent_with_the_correlation_functions() {
    for cf in [
        CorrelationFunction::gaussian(1.0e-6, 1.0e-6),
        CorrelationFunction::gaussian(0.5e-6, 2.0e-6),
        CorrelationFunction::paper_extracted(),
    ] {
        let spectrum = SurfaceSpectrum::new(cf);
        let sigma2 = spectrum.integrate_moment(0);
        assert!(
            (sigma2 - cf.variance()).abs() < 0.05 * cf.variance(),
            "{cf}: σ² from spectrum {sigma2:.3e}"
        );
    }
}

#[test]
fn huray_and_hbm_agree_on_the_order_of_magnitude_for_matched_geometry() {
    // A hemisphere of radius a on a tile: Huray with one snowball of the same
    // radius and the HBM boss describe the same physical object; at high
    // frequency both give an enhancement set by the same area ratio, within a
    // geometric factor of order one.
    let radius = Micrometers::new(2.0);
    let tile = Micrometers::new(8.0);
    let f = GigaHertz::new(40.0);
    let hbm = HemisphericalBossModel::new(radius.into(), tile.into(), Conductor::copper_foil());
    let huray = HurayModel::new(
        vec![roughsim::baselines::huray::SnowballFamily {
            count: 1.0,
            radius: 2.0e-6,
        }],
        tile.into(),
        Conductor::copper_foil(),
    );
    let a = hbm.enhancement_factor(f.into());
    let b = huray.enhancement_factor(f.into());
    assert!(a > 1.0 && b > 1.0);
    assert!(a / b < 3.0 && b / a < 3.0, "HBM {a} vs Huray {b}");
}
