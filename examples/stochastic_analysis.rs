//! Stochastic analysis: Monte-Carlo versus SSCM for the loss-enhancement
//! factor of a random surface (a miniature of paper Fig. 7 / Table I), driven
//! through the `rough-engine` batch scheduler.
//!
//! The three ensembles are declarative scenarios executed on one engine: the
//! Ewald kernels, the KL basis and the flat-reference solve are built once,
//! cached, and shared by every realization and collocation node; the work
//! units run in parallel with bit-identical statistics for the fixed master
//! seed regardless of thread count.
//!
//! The Monte-Carlo campaign additionally demonstrates the session-oriented
//! `Run` API: it streams typed `RunEvent`s through a channel while the units
//! execute, appends every completed record to a JSONL checkpoint, and then
//! shows that `Run::resume` on that checkpoint reproduces the report bit for
//! bit without re-running a single solve.
//!
//! Run with `cargo run --release --example stochastic_analysis`.

use roughsim::engine::CaseOutcome;
use roughsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stack = Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide());
    let roughness = RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0));
    let cells = 8;

    let base = |name: &str| {
        Scenario::builder(stack)
            .name(name)
            .roughness(roughness.clone())
            .frequencies([GigaHertz::new(5.0).into()])
            .cells_per_side(cells)
            .max_kl_modes(5)
            .energy_fraction(0.9)
            .master_seed(5)
    };
    let engine = Engine::new();

    // Monte-Carlo through the session API: streamed events + JSONL checkpoint
    // (engine.run_config() shares the engine's persistent kernel cache).
    let checkpoint = std::env::temp_dir().join("roughsim_stochastic_analysis.jsonl");
    let (config, events) = engine
        .run_config()
        .checkpoint(&checkpoint)
        .observer_channel();
    let mc = Run::new(&base("mc").monte_carlo(24).build()?, config)?.execute()?;
    let completed_events = events
        .try_iter()
        .filter(|e| matches!(e, RunEvent::UnitCompleted { .. }))
        .count();
    println!(
        "streamed {completed_events} unit-completion events; checkpoint at {}",
        checkpoint.display()
    );

    // Resuming a finished checkpoint re-runs nothing and rebuilds the same
    // report bit for bit — the same path an interrupted campaign takes.
    let resumed = Run::resume(&checkpoint, engine.run_config())?;
    assert_eq!(resumed.remaining_units(), 0);
    let replayed = resumed.execute()?;
    assert_eq!(
        replayed.cases[0].mean.to_bits(),
        mc.cases[0].mean.to_bits(),
        "resume must be bit-identical"
    );
    println!("checkpoint resume rebuilt the report bit-identically (0 units re-run)");
    std::fs::remove_file(&checkpoint).ok();

    let sscm1 = engine.run(&base("sscm1").sscm(1).build()?)?;
    let sscm2 = engine.run(&base("sscm2").sscm(2).build()?)?;

    println!(
        "KL expansion: {} modes (engine deduplicated {} shared context(s))",
        mc.cases[0].kl_modes, mc.distinct_contexts
    );
    println!();
    println!("Mean loss-enhancement factor at 5 GHz (σ = η = 1 µm):");
    // Standard error of the MC mean, not the sample spread.
    let mc_std_error = mc.cases[0].std_dev / (mc.cases[0].solves as f64).sqrt();
    println!(
        "  Monte-Carlo : {:.4} ± {:.4}   ({} SWM solves, {:.0} ms)",
        mc.cases[0].mean,
        mc_std_error,
        mc.cases[0].solves,
        mc.wall_time.as_secs_f64() * 1e3
    );
    println!(
        "  1st-SSCM    : {:.4}            ({} SWM solves, {:.0} ms)",
        sscm1.cases[0].mean,
        sscm1.cases[0].solves,
        sscm1.wall_time.as_secs_f64() * 1e3
    );
    println!(
        "  2nd-SSCM    : {:.4}            ({} SWM solves, {:.0} ms)",
        sscm2.cases[0].mean,
        sscm2.cases[0].solves,
        sscm2.wall_time.as_secs_f64() * 1e3
    );
    println!();
    println!(
        "Kernel-cache reuse across the three campaigns: {} hits / {} misses",
        mc.cache.hits + sscm1.cache.hits + sscm2.cache.hits,
        mc.cache.misses + sscm1.cache.misses + sscm2.cache.misses
    );
    if let CaseOutcome::Sscm(surrogate) = &sscm2.cases[0].outcome {
        println!(
            "90th-percentile Pr/Ps from the 2nd-order surrogate: {:.4}",
            surrogate.cdf().quantile(0.9)
        );
    }
    println!("The SSCM reaches the Monte-Carlo mean with an order of magnitude fewer");
    println!("deterministic solves — the claim of the paper's Table I.");
    Ok(())
}
