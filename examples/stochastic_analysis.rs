//! Stochastic analysis: Monte-Carlo versus SSCM for the loss-enhancement
//! factor of a random surface (a miniature of paper Fig. 7 / Table I).
//!
//! Run with `cargo run --release --example stochastic_analysis`.

use roughsim::prelude::*;
use roughsim::stochastic::collocation::run_sscm;
use roughsim::stochastic::monte_carlo::run_monte_carlo;
use roughsim::surface::correlation::CorrelationFunction;
use roughsim::surface::generation::kl::KarhunenLoeve;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stack = Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide());
    let cf = CorrelationFunction::gaussian(1.0e-6, 1.0e-6);
    let cells = 8;

    let problem = SwmProblem::builder(
        stack,
        RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0)),
    )
    .frequency(GigaHertz::new(5.0).into())
    .cells_per_side(cells)
    .build()?;

    // Karhunen–Loève reduction of the surface to a handful of Gaussian germs.
    let kl = KarhunenLoeve::new(cf, cells, problem.patch_length(), 0.9)?;
    let capped = kl.modes().min(5);
    let kl = kl.with_modes(capped);
    println!(
        "KL expansion: {} modes capture {:.1}% of the height variance",
        kl.modes(),
        kl.captured_energy() * 100.0
    );

    let reference = problem.flat_reference_power()?;
    let model = |xi: &[f64]| {
        problem
            .solve_with_reference(&kl.synthesize(xi), reference)
            .expect("SWM solve")
            .enhancement_factor()
    };

    // A small Monte-Carlo ensemble and both SSCM orders.
    let mc = run_monte_carlo(
        kl.modes(),
        &MonteCarloConfig {
            samples: 24,
            seed: 5,
        },
        model,
    );
    let sscm1 = run_sscm(
        kl.modes(),
        &SscmConfig {
            order: 1,
            ..Default::default()
        },
        model,
    );
    let sscm2 = run_sscm(
        kl.modes(),
        &SscmConfig {
            order: 2,
            ..Default::default()
        },
        model,
    );

    println!();
    println!("Mean loss-enhancement factor at 5 GHz (σ = η = 1 µm):");
    println!(
        "  Monte-Carlo : {:.4} ± {:.4}   ({} SWM solves)",
        mc.mean(),
        mc.summary().std_error(),
        mc.evaluations()
    );
    println!(
        "  1st-SSCM    : {:.4}            ({} SWM solves)",
        sscm1.mean(),
        sscm1.evaluations()
    );
    println!(
        "  2nd-SSCM    : {:.4}            ({} SWM solves)",
        sscm2.mean(),
        sscm2.evaluations()
    );
    println!();
    println!(
        "90th-percentile Pr/Ps from the 2nd-order surrogate: {:.4}",
        sscm2.cdf().quantile(0.9)
    );
    println!("The SSCM reaches the Monte-Carlo mean with an order of magnitude fewer");
    println!("deterministic solves — the claim of the paper's Table I.");
    Ok(())
}
