//! Domain scenario: how surface roughness degrades the insertion loss of a
//! PCB stripline channel.
//!
//! The paper's motivation is exactly this design question: at multi-GHz rates
//! the conductor loss of an off-chip channel is under-predicted unless the
//! roughness enhancement `Pr/Ps(f)` multiplies the smooth-conductor
//! attenuation. This example builds a simple stripline attenuation model,
//! applies three roughness treatments (smooth, mildly treated foil, heavily
//! treated foil) and prints the insertion loss of a 10 cm channel across
//! frequency.
//!
//! Run with `cargo run --release --example pcb_insertion_loss`.

use roughsim::baselines::huray::HurayModel;
use roughsim::baselines::spm2::Spm2Model;
use roughsim::baselines::RoughnessLossModel;
use roughsim::em::constants::ETA_0;
use roughsim::prelude::*;
use roughsim::surface::correlation::CorrelationFunction;

/// Smooth-conductor attenuation (dB/m) of a stripline of width `w` and
/// characteristic impedance `z0` — the textbook `α_c = R_s/(Z₀·w)` estimate
/// with both conductors counted.
fn smooth_conductor_loss_db_per_m(stack: &Stackup, frequency: Hertz, width: f64, z0: f64) -> f64 {
    let rs = stack
        .conductor()
        .surface_resistance(Hertz::new(frequency.0).into());
    let alpha_np = rs / (z0 * width);
    8.686 * alpha_np
}

/// Dielectric loss (dB/m) for a loss tangent `tan_d`.
fn dielectric_loss_db_per_m(stack: &Stackup, frequency: Hertz, tan_d: f64) -> f64 {
    let f: roughsim::em::units::Frequency = Hertz::new(frequency.0).into();
    let k1 = stack.dielectric().wavenumber(f);
    8.686 * 0.5 * k1 * tan_d
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stack = Stackup::new(Conductor::copper_foil(), Dielectric::fr4());
    let width = 150e-6; // 150 µm trace
    let z0 = 50.0;
    let tan_d = 0.015;
    let length = 0.10; // 10 cm channel
    let _ = ETA_0; // free-space impedance available for further modelling

    // Roughness treatments.
    let mild = Spm2Model::new(
        CorrelationFunction::gaussian(0.5e-6, 1.5e-6),
        Conductor::copper_foil(),
    );
    let heavy = HurayModel::cannonball(
        Micrometers::new(0.6).into(),
        Micrometers::new(9.4).into(),
        Conductor::copper_foil(),
    );

    println!("Insertion loss of a 10 cm stripline channel (FR-4, 150 µm trace)");
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12} | {:>12}",
        "f (GHz)", "dielectric", "smooth Cu", "mild foil", "heavy foil"
    );
    println!("{}", "-".repeat(72));
    for ghz in [1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0] {
        let f = Hertz::new(ghz * 1e9);
        let freq: roughsim::em::units::Frequency = f.into();
        let a_d = dielectric_loss_db_per_m(&stack, f, tan_d) * length;
        let a_c = smooth_conductor_loss_db_per_m(&stack, f, width, z0) * length;
        let a_mild = a_c * mild.enhancement_factor(freq);
        let a_heavy = a_c * heavy.enhancement_factor(freq);
        println!(
            "{:>8.1} | {:>9.3} dB | {:>9.3} dB | {:>9.3} dB | {:>9.3} dB",
            ghz,
            a_d,
            a_d + a_c,
            a_d + a_mild,
            a_d + a_heavy
        );
    }
    println!();
    println!("The roughness columns multiply the conductor term by Pr/Ps(f); at 20+ GHz");
    println!("heavily treated foil costs more than an extra dB over 10 cm — the signal-");
    println!("integrity margin the paper's methodology is designed to predict.");
    Ok(())
}
