//! Broadband loss sweep: adaptively sample the loss-enhancement factor
//! `K(f)` of the paper's Fig. 5 half-spheroid protrusion over 2–10 GHz,
//! fit the curve, and export it as a `Z(f)` CSV, a Touchstone-style `.s1p`
//! and a SPICE effective-conductivity table.
//!
//! Run with `cargo run --release --example broadband_loss`.

use roughsim::engine::sweep::SweepScenario;
use roughsim::prelude::*;
use roughsim::surface::RoughSurface;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The Fig. 5 geometry: a deterministic half-spheroid protrusion
    //    (height 5.8 µm, base radius 4.7 µm) on a 12 µm tile.
    let tile = 12.0e-6;
    let (height, base_radius) = (5.8e-6, 4.7e-6);
    let cells = 8;
    let surface = RoughSurface::from_fn(cells, tile, |x, y| {
        let dx = x - 0.5 * tile;
        let dy = y - 0.5 * tile;
        let r2 = (dx * dx + dy * dy) / (base_radius * base_radius);
        if r2 < 1.0 {
            height * (1.0 - r2).sqrt()
        } else {
            0.0
        }
    });
    let stack = Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide());
    let template = Scenario::builder(stack)
        .name("broadband-loss")
        .roughness(RoughnessSpec::deterministic(Micrometers::new(12.0)))
        .frequencies([GigaHertz::new(2.0).into()]) // replaced by the sweep
        .cells_per_side(cells)
        .deterministic(surface)
        .build()?;

    // 2. The band request: 2–10 GHz, a 5-point coarse scan, refined where
    //    the curve deviates from local rational interpolation, up to 9
    //    solved points.
    let sweep = SweepScenario::builder(
        template,
        GigaHertz::new(2.0).into(),
        GigaHertz::new(10.0).into(),
    )
    .coarse_points(5)
    .max_points(9)
    .tolerance(1e-3)
    .build()?;

    // 3. Run it. The evaluator owns the warm state: the kernel cache spans
    //    refinement rounds, so later rounds only pay for genuinely new
    //    frequencies.
    let mut evaluator = EngineEvaluator::new();
    let outcome = FrequencySweep::new(sweep).run(&mut evaluator)?;

    println!("broadband loss sweep (Fig. 5 half-spheroid, 2-10 GHz)");
    println!(
        "  {} points in {} rounds (converged: {}, fit: {})",
        outcome.points.len(),
        outcome.rounds,
        outcome.converged,
        outcome.fit.describe(),
    );
    for point in &outcome.points {
        println!(
            "  {:7.4} GHz  K = {:.6}",
            point.frequency_hz * 1e-9,
            point.value
        );
    }

    // 4. Export the curve for circuit tools.
    let dir = std::env::temp_dir().join("roughsim_broadband_loss");
    std::fs::create_dir_all(&dir)?;
    for path in roughsim::sweep::write_exports(&outcome, &stack, &dir, "broadband_loss")? {
        println!("  wrote {}", path.display());
    }
    Ok(())
}
