//! Design-space exploration: which combinations of RMS height and correlation
//! length keep the roughness penalty below a budget at a target data rate?
//!
//! Foil vendors quote σ (RMS height); the correlation length is set by the
//! treatment chemistry. This example sweeps both, evaluates the loss
//! enhancement at the Nyquist frequency of a 32 Gb/s NRZ link (16 GHz) with
//! the spectral SPM2 model, validates one corner with a full SWM solve, and
//! prints the resulting design map.
//!
//! Run with `cargo run --release --example roughness_design_space`.

use roughsim::baselines::spm2::Spm2Model;
use roughsim::baselines::RoughnessLossModel;
use roughsim::prelude::*;
use roughsim::surface::correlation::CorrelationFunction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nyquist = GigaHertz::new(16.0);
    let budget = 1.35; // at most +35 % conductor loss from roughness

    let sigmas_um = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2];
    let etas_um = [0.5, 1.0, 1.5, 2.0, 3.0];

    println!(
        "Roughness design space at {} GHz (budget Pr/Ps <= {budget})",
        nyquist.0
    );
    print!("{:>10}", "σ\\η (µm)");
    for eta in etas_um {
        print!("{eta:>8.1}");
    }
    println!();
    for sigma in sigmas_um {
        print!("{sigma:>10.1}");
        for eta in etas_um {
            let model = Spm2Model::new(
                CorrelationFunction::gaussian(sigma * 1e-6, eta * 1e-6),
                Conductor::copper_foil(),
            );
            let k = model.enhancement_factor(nyquist.into());
            let marker = if k <= budget { ' ' } else { '*' };
            print!("{k:>7.2}{marker}");
        }
        println!();
    }
    println!("(* = exceeds the budget)");
    println!();

    // Validate one aggressive corner with the full SWM solver (single
    // realization on a small grid — the trend is what matters here).
    let sigma = 0.8e-6;
    let eta = 1.0e-6;
    let stack = Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide());
    let problem = SwmProblem::builder(
        stack,
        RoughnessSpec::gaussian(Meters::new(sigma), Meters::new(eta)),
    )
    .frequency(nyquist.into())
    .cells_per_side(10)
    .build()?;
    let surface = problem.sample_surface(11);
    let swm = problem.solve(&surface)?.enhancement_factor();
    let spm2 = Spm2Model::new(
        CorrelationFunction::gaussian(sigma, eta),
        Conductor::copper_foil(),
    )
    .enhancement_factor(nyquist.into());
    println!(
        "SWM spot check at σ = 0.8 µm, η = 1.0 µm: Pr/Ps = {swm:.3} (SPM2 predicts {spm2:.3})"
    );
    println!("SWM covers the rough corners where the closed forms drift apart (paper Figs. 3–5).");
    Ok(())
}
