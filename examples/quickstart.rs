//! Quickstart: compute the loss-enhancement factor `Pr/Ps` of one rough
//! copper/SiO₂ interface realization at 5 GHz and compare it with the
//! analytic baselines.
//!
//! Run with `cargo run --release --example quickstart`.

use roughsim::baselines::hammerstad::HammerstadModel;
use roughsim::baselines::spm2::Spm2Model;
use roughsim::baselines::RoughnessLossModel;
use roughsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Materials: the paper's copper foil (1.67 µΩ·cm) under SiO₂ (ε_r = 3.7).
    let stack = Stackup::new(Conductor::copper_foil(), Dielectric::silicon_dioxide());

    // 2. Roughness: a Gaussian-correlated surface with σ = η = 1 µm on the
    //    paper's 5η doubly-periodic patch.
    let roughness = RoughnessSpec::gaussian(Micrometers::new(1.0), Micrometers::new(1.0));

    // 3. The SWM problem at 5 GHz on a small demonstration grid.
    let frequency = GigaHertz::new(5.0);
    let problem = SwmProblem::builder(stack, roughness)
        .frequency(frequency.into())
        .cells_per_side(10)
        .build()?;

    // 4. One surface realization, solved.
    let surface = problem.sample_surface(7);
    let result = problem.solve(&surface)?;

    println!("SWM quickstart (σ = η = 1 µm, f = {} GHz)", frequency.0);
    println!(
        "  surface RMS height    : {:.3} µm",
        surface.rms_height() * 1e6
    );
    println!("  surface area ratio    : {:.3}", surface.area_ratio());
    println!(
        "  absorbed power  Pr    : {:.4e} (arb. units)",
        result.absorbed_power()
    );
    println!(
        "  smooth power    Ps    : {:.4e}",
        result.flat_absorbed_power()
    );
    println!(
        "  loss enhancement Pr/Ps: {:.4}",
        result.enhancement_factor()
    );

    // 5. Analytic baselines for context.
    let hammerstad = HammerstadModel::new(Micrometers::new(1.0).into(), Conductor::copper_foil());
    let spm2 = Spm2Model::new(
        CorrelationFunction::gaussian(1.0e-6, 1.0e-6),
        Conductor::copper_foil(),
    );
    println!(
        "  Hammerstad (σ only)   : {:.4}",
        hammerstad.enhancement_factor(frequency.into())
    );
    println!(
        "  SPM2 (spectral)       : {:.4}",
        spm2.enhancement_factor(frequency.into())
    );
    println!();
    println!("Note: one realization of a random surface — the paper's figures report");
    println!("the SSCM ensemble mean (see crates/bench/src/bin/fig3_gaussian_cf.rs).");
    Ok(())
}
