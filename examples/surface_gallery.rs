//! Surface gallery: synthesize and characterize rough surfaces for the three
//! correlation families (Gaussian, exponential, measurement-extracted), the
//! workflow of paper §II / Fig. 2.
//!
//! Run with `cargo run --release --example surface_gallery`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use roughsim::surface::correlation::CorrelationFunction;
use roughsim::surface::generation::spectral::SpectralSurfaceGenerator;
use roughsim::surface::statistics::estimate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases = [
        (
            "Gaussian (σ=1µm, η=1µm)",
            CorrelationFunction::gaussian(1.0e-6, 1.0e-6),
        ),
        (
            "Gaussian (σ=1µm, η=3µm)",
            CorrelationFunction::gaussian(1.0e-6, 3.0e-6),
        ),
        (
            "Exponential (σ=1µm, η=1µm)",
            CorrelationFunction::exponential(1.0e-6, 1.0e-6),
        ),
        (
            "Extracted CF eq.(12)",
            CorrelationFunction::paper_extracted(),
        ),
    ];

    println!(
        "{:<28} {:>10} {:>12} {:>10} {:>10}",
        "surface", "RMS (µm)", "corr. (µm)", "RMS slope", "area ratio"
    );
    println!("{}", "-".repeat(76));
    let mut rng = StdRng::seed_from_u64(2009);
    for (name, cf) in cases {
        let patch = 8.0 * cf.correlation_length();
        let generator = SpectralSurfaceGenerator::new(cf, 64, patch)?;
        let surface = generator.generate(&mut rng);
        let stats = estimate(&surface);
        println!(
            "{:<28} {:>10.3} {:>12} {:>10.3} {:>10.3}",
            name,
            stats.rms_height * 1e6,
            stats
                .correlation_length
                .map(|e| format!("{:.3}", e * 1e6))
                .unwrap_or_else(|| "n/a".into()),
            stats.rms_slope,
            stats.area_ratio
        );
    }
    println!();
    println!("ASCII rendering of one Gaussian realization (σ = η = 1 µm, 32×32):");
    let generator =
        SpectralSurfaceGenerator::new(CorrelationFunction::gaussian(1.0e-6, 1.0e-6), 32, 5.0e-6)?;
    let surface = generator.generate(&mut rng);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = surface
        .heights()
        .iter()
        .fold(0.0f64, |acc, &h| acc.max(h.abs()));
    for iy in 0..32 {
        let mut line = String::new();
        for ix in 0..32 {
            let h = surface.height(ix as isize, iy as isize);
            let level = (((h / max) + 1.0) / 2.0 * (glyphs.len() - 1) as f64).round() as usize;
            line.push(glyphs[level.min(glyphs.len() - 1)]);
        }
        println!("  {line}");
    }
    Ok(())
}
